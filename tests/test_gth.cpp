#include "markov/gth.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

namespace mk = rlb::markov;
using rlb::linalg::Matrix;
using rlb::linalg::Vector;

TEST(Gth, TwoStateChain) {
  Matrix q(2, 2);
  q(0, 0) = -1.0;
  q(0, 1) = 1.0;
  q(1, 0) = 2.0;
  q(1, 1) = -2.0;
  const Vector pi = mk::stationary_gth(q);
  EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-14);
  EXPECT_NEAR(pi[1], 1.0 / 3.0, 1e-14);
}

TEST(Gth, Mm1TruncatedGeometric) {
  const double rho = 0.8;
  const int n = 30;
  Matrix q(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    if (i + 1 < n) {
      q(i, i + 1) = rho;
      q(i, i) -= rho;
    }
    if (i > 0) {
      q(i, i - 1) = 1.0;
      q(i, i) -= 1.0;
    }
  }
  const Vector pi = mk::stationary_gth(q);
  for (int i = 1; i < n; ++i)
    EXPECT_NEAR(pi[i] / pi[i - 1], rho, 1e-12) << i;
}

TEST(Gth, SatisfiesBalanceEquations) {
  Matrix q(4, 4, 0.0);
  const double rates[4][4] = {{0, 1, 2, 0.5},
                              {0.3, 0, 1.5, 0},
                              {2, 0, 0, 1},
                              {0.7, 0.2, 0.1, 0}};
  for (int i = 0; i < 4; ++i) {
    double out = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      q(i, j) = rates[i][j];
      out += rates[i][j];
    }
    q(i, i) = -out;
  }
  const Vector pi = mk::stationary_gth(q);
  const Vector balance = rlb::linalg::vec_mat(pi, q);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(balance[j], 0.0, 1e-13);
  EXPECT_NEAR(rlb::linalg::sum(pi), 1.0, 1e-13);
}

TEST(Gth, ReducibleChainThrows) {
  Matrix q(2, 2, 0.0);  // two absorbing states, not irreducible
  EXPECT_THROW(mk::stationary_gth(q), std::runtime_error);
}

TEST(GthDtmc, SimpleRandomWalk) {
  Matrix p(3, 3, 0.0);
  p(0, 1) = 1.0;
  p(1, 0) = 0.5;
  p(1, 2) = 0.5;
  p(2, 1) = 1.0;
  const Vector pi = mk::stationary_gth_dtmc(p);
  EXPECT_NEAR(pi[0], 0.25, 1e-13);
  EXPECT_NEAR(pi[1], 0.5, 1e-13);
  EXPECT_NEAR(pi[2], 0.25, 1e-13);
}

TEST(Gth, NumericallyExtremeRates) {
  // Rates spanning 12 orders of magnitude; GTH should stay accurate.
  Matrix q(3, 3, 0.0);
  q(0, 1) = 1e-6;
  q(1, 0) = 1e6;
  q(1, 2) = 1.0;
  q(2, 1) = 1.0;
  for (int i = 0; i < 3; ++i) {
    double out = 0.0;
    for (int j = 0; j < 3; ++j)
      if (i != j) out += q(i, j);
    q(i, i) = -out;
  }
  const Vector pi = mk::stationary_gth(q);
  // Detailed balance for this birth-death chain: pi0 * 1e-6 = pi1 * 1e6.
  EXPECT_NEAR(pi[0] * 1e-6 / (pi[1] * 1e6), 1.0, 1e-10);
  EXPECT_NEAR(pi[1] / pi[2], 1.0, 1e-10);
}

}  // namespace
