// End-to-end validation: simulate the bound-model CTMCs directly and check
// the matrix-geometric solutions against them.
#include <gtest/gtest.h>

#include "sim/bound_sim.h"
#include "sqd/bound_solver.h"

namespace {

using rlb::sim::simulate_bound_model;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

TEST(BoundSim, GapNeverExceedsThreshold) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.8, 1.0}, 2, kind);
    const auto r = simulate_bound_model(model, 200'000, 10'000, 31337);
    EXPECT_LE(r.max_gap_seen, 2.0);
  }
}

TEST(BoundSim, UnitRankSpeedsReproduceHomogeneousExactly) {
  // All-ones rank speeds build the same transition rates, so the jump
  // chain consumes the RNG identically: bit-identical results, not just
  // statistically close.
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.75, 1.0}, 2, kind);
    const auto homog = simulate_bound_model(model, 200'000, 10'000, 21);
    const auto hetero = simulate_bound_model(
        model, 200'000, 10'000, 21, 1, rlb::util::ThreadBudget::serial(),
        {1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(hetero.mean_waiting_jobs, homog.mean_waiting_jobs);
    EXPECT_DOUBLE_EQ(hetero.mean_jobs, homog.mean_jobs);
    EXPECT_DOUBLE_EQ(hetero.max_gap_seen, homog.max_gap_seen);
  }
}

TEST(BoundSim, HeteroGapBoundStillHolds) {
  // The redirection rules are rate-independent: S(T) confines the chain
  // for any rank-speed profile, both bound kinds.
  const std::vector<double> speeds{1.6, 1.2, 0.8, 0.4};
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{4, 2, 0.8, 1.0}, 2, kind);
    const auto r = simulate_bound_model(
        model, 200'000, 10'000, 23, 1, rlb::util::ThreadBudget::serial(),
        speeds);
    EXPECT_LE(r.max_gap_seen, 2.0);
  }
}

TEST(BoundSim, FastServiceOfLongQueuesShrinksBacklog) {
  // Speeding up the longest queues at equal total capacity strictly helps
  // the lower model's backlog.
  const BoundModel model(Params{4, 2, 0.8, 1.0}, 3, BoundKind::Lower);
  const auto homog = simulate_bound_model(model, 1'000'000, 100'000, 29);
  const auto skewed = simulate_bound_model(
      model, 1'000'000, 100'000, 29, 1, rlb::util::ThreadBudget::serial(),
      {1.5, 1.5, 0.5, 0.5});
  EXPECT_LT(skewed.mean_waiting_jobs, 0.9 * homog.mean_waiting_jobs);
}

TEST(BoundSim, HeteroIsThreadBudgetInvariant) {
  const BoundModel model(Params{3, 2, 0.8, 1.0}, 2, BoundKind::Lower);
  const std::vector<double> speeds{1.5, 1.0, 0.5};
  const auto serial = simulate_bound_model(
      model, 120'000, 12'000, 31, 3, rlb::util::ThreadBudget::serial(),
      speeds);
  rlb::util::ThreadBudget four(4);
  const auto parallel =
      simulate_bound_model(model, 120'000, 12'000, 31, 3, four, speeds);
  EXPECT_DOUBLE_EQ(parallel.mean_waiting_jobs, serial.mean_waiting_jobs);
  EXPECT_DOUBLE_EQ(parallel.mean_jobs, serial.mean_jobs);
}

TEST(BoundSim, ValidatesRankSpeeds) {
  const BoundModel model(Params{3, 2, 0.8, 1.0}, 2, BoundKind::Lower);
  EXPECT_THROW(
      simulate_bound_model(model, 1000, 100, 1, 1,
                           rlb::util::ThreadBudget::serial(), {1.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(simulate_bound_model(model, 1000, 100, 1, 1,
                                    rlb::util::ThreadBudget::serial(),
                                    {1.0, -1.0, 1.0}),
               std::invalid_argument);
}

TEST(BoundSim, LowerModelMatchesSolver) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const auto solved = rlb::sqd::solve_bound(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 7);
  EXPECT_NEAR(sim.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.03 * (1.0 + solved.mean_waiting_jobs));
  EXPECT_NEAR(sim.mean_jobs, solved.mean_jobs,
              0.03 * (1.0 + solved.mean_jobs));
}

TEST(BoundSim, UpperModelMatchesSolver) {
  const BoundModel model(Params{3, 2, 0.55, 1.0}, 2, BoundKind::Upper);
  const auto solved = rlb::sqd::solve_bound(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 11);
  EXPECT_NEAR(sim.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.05 * (1.0 + solved.mean_waiting_jobs));
}

TEST(BoundSim, ImprovedSolverMatchesSimulationToo) {
  const BoundModel model(Params{2, 2, 0.8, 1.0}, 2, BoundKind::Lower);
  const auto improved = rlb::sqd::solve_lower_improved(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 13);
  EXPECT_NEAR(sim.mean_waiting_jobs, improved.mean_waiting_jobs,
              0.03 * (1.0 + improved.mean_waiting_jobs));
}

TEST(BoundSim, LowerBelowUpperInSimulation) {
  const Params p{3, 2, 0.6, 1.0};
  const auto low = simulate_bound_model(
      BoundModel(p, 2, BoundKind::Lower), 2'000'000, 200'000, 17);
  const auto up = simulate_bound_model(
      BoundModel(p, 2, BoundKind::Upper), 2'000'000, 200'000, 17);
  EXPECT_LT(low.mean_waiting_jobs, up.mean_waiting_jobs + 0.02);
}

TEST(BoundSim, RejectsBadWarmup) {
  const BoundModel model(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Lower);
  EXPECT_THROW(simulate_bound_model(model, 100, 100, 1),
               std::invalid_argument);
}

}  // namespace
