// End-to-end validation: simulate the bound-model CTMCs directly and check
// the matrix-geometric solutions against them.
#include <gtest/gtest.h>

#include "sim/bound_sim.h"
#include "sqd/bound_solver.h"

namespace {

using rlb::sim::simulate_bound_model;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

TEST(BoundSim, GapNeverExceedsThreshold) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.8, 1.0}, 2, kind);
    const auto r = simulate_bound_model(model, 200'000, 10'000, 31337);
    EXPECT_LE(r.max_gap_seen, 2.0);
  }
}

TEST(BoundSim, LowerModelMatchesSolver) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const auto solved = rlb::sqd::solve_bound(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 7);
  EXPECT_NEAR(sim.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.03 * (1.0 + solved.mean_waiting_jobs));
  EXPECT_NEAR(sim.mean_jobs, solved.mean_jobs,
              0.03 * (1.0 + solved.mean_jobs));
}

TEST(BoundSim, UpperModelMatchesSolver) {
  const BoundModel model(Params{3, 2, 0.55, 1.0}, 2, BoundKind::Upper);
  const auto solved = rlb::sqd::solve_bound(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 11);
  EXPECT_NEAR(sim.mean_waiting_jobs, solved.mean_waiting_jobs,
              0.05 * (1.0 + solved.mean_waiting_jobs));
}

TEST(BoundSim, ImprovedSolverMatchesSimulationToo) {
  const BoundModel model(Params{2, 2, 0.8, 1.0}, 2, BoundKind::Lower);
  const auto improved = rlb::sqd::solve_lower_improved(model);
  const auto sim = simulate_bound_model(model, 4'000'000, 400'000, 13);
  EXPECT_NEAR(sim.mean_waiting_jobs, improved.mean_waiting_jobs,
              0.03 * (1.0 + improved.mean_waiting_jobs));
}

TEST(BoundSim, LowerBelowUpperInSimulation) {
  const Params p{3, 2, 0.6, 1.0};
  const auto low = simulate_bound_model(
      BoundModel(p, 2, BoundKind::Lower), 2'000'000, 200'000, 17);
  const auto up = simulate_bound_model(
      BoundModel(p, 2, BoundKind::Upper), 2'000'000, 200'000, 17);
  EXPECT_LT(low.mean_waiting_jobs, up.mean_waiting_jobs + 0.02);
}

TEST(BoundSim, RejectsBadWarmup) {
  const BoundModel model(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Lower);
  EXPECT_THROW(simulate_bound_model(model, 100, 100, 1),
               std::invalid_argument);
}

}  // namespace
