#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace {

using rlb::linalg::Matrix;
using rlb::linalg::Vector;

Matrix make(std::size_t r, std::size_t c, std::initializer_list<double> v) {
  Matrix m(r, c);
  auto it = v.begin();
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = *it++;
  return m;
}

TEST(Matrix, IdentityAndFill) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix f(2, 2, 7.0);
  EXPECT_DOUBLE_EQ(f(1, 1), 7.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a = make(2, 2, {1, 2, 3, 4});
  const Matrix b = make(2, 2, {5, 6, 7, 8});
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 12.0);
  const Matrix d = b - a;
  EXPECT_DOUBLE_EQ(d(0, 1), 4.0);
  const Matrix t = a * 2.0;
  EXPECT_DOUBLE_EQ(t(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Matrix, Multiply) {
  const Matrix a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = make(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyByIdentity) {
  const Matrix a = make(2, 2, {1.5, -2, 0.25, 4});
  const Matrix r = a * Matrix::identity(2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(r(i, j), a(i, j));
}

TEST(Matrix, Transpose) {
  const Matrix a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  const Matrix a = make(2, 2, {1, -5, 2, 3});
  EXPECT_DOUBLE_EQ(a.norm_inf(), 6.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

TEST(Matrix, RowSums) {
  const Matrix a = make(2, 2, {1, 2, -3, 3});
  const Vector rs = a.row_sums();
  EXPECT_DOUBLE_EQ(rs[0], 3.0);
  EXPECT_DOUBLE_EQ(rs[1], 0.0);
}

TEST(VectorOps, VecMatAndMatVec) {
  const Matrix a = make(2, 2, {1, 2, 3, 4});
  const Vector x{1.0, 1.0};
  const Vector row = rlb::linalg::vec_mat(x, a);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 6.0);
  const Vector col = rlb::linalg::mat_vec(a, x);
  EXPECT_DOUBLE_EQ(col[0], 3.0);
  EXPECT_DOUBLE_EQ(col[1], 7.0);
}

TEST(VectorOps, DotSumNorm) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(rlb::linalg::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(rlb::linalg::sum(a), 6.0);
  EXPECT_DOUBLE_EQ(rlb::linalg::norm_inf(b), 6.0);
}

TEST(VectorOps, AxpyAndScaled) {
  Vector y{1, 1};
  const Vector x{2, 3};
  rlb::linalg::axpy(y, 2.0, x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Vector s = rlb::linalg::scaled({1, 2}, 3.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
}

}  // namespace
