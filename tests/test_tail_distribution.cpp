#include "sqd/tail_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::marginal_queue_tail;
using rlb::sqd::Params;

TEST(TailDistribution, BasicShape) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const auto td = marginal_queue_tail(model, 12);
  ASSERT_EQ(td.tail.size(), 13u);
  EXPECT_NEAR(td.tail[0], 1.0, 1e-9);
  for (std::size_t k = 1; k < td.tail.size(); ++k) {
    EXPECT_LE(td.tail[k], td.tail[k - 1] + 1e-12) << k;  // non-increasing
    EXPECT_GE(td.tail[k], 0.0);
  }
  EXPECT_LT(td.tail.back(), 0.05);  // far tail is small at rho = 0.7
}

TEST(TailDistribution, SingleServerIsMm1Geometric) {
  const double rho = 0.8;
  const BoundModel model(Params{1, 1, rho, 1.0}, 1, BoundKind::Lower);
  const auto td = marginal_queue_tail(model, 15);
  // M/M/1: P(Q >= k) = rho^k.
  for (int k = 0; k <= 15; ++k)
    EXPECT_NEAR(td.tail[k], std::pow(rho, k), 1e-8) << k;
}

TEST(TailDistribution, MeanMatchesBoundSolver) {
  for (BoundKind kind : {BoundKind::Lower, BoundKind::Upper}) {
    const BoundModel model(Params{3, 2, 0.6, 1.0}, 2, kind);
    const auto td = marginal_queue_tail(model, 60);
    const auto r = rlb::sqd::solve_bound(model);
    // mean queue per server from the tail == mean_jobs / N.
    EXPECT_NEAR(td.mean_queue_length(), r.mean_jobs / 3.0, 1e-6);
  }
}

TEST(TailDistribution, LowerTailMatchesSimulatedSystemClosely) {
  // The lower model's marginal tail should track the real SQ(2) system's
  // tail (the lower bound is "remarkably tight").
  const Params p{3, 2, 0.8, 1.0};
  const BoundModel model(p, 3, BoundKind::Lower);
  const auto td = marginal_queue_tail(model, 8);

  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = 2'000'000;
  cfg.warmup = 200'000;
  cfg.tail_kmax = 8;
  cfg.seed = 555;
  const auto sim = rlb::sim::simulate_sqd_fast(cfg);
  ASSERT_EQ(sim.marginal_tail.size(), 9u);
  for (int k = 0; k <= 8; ++k)
    EXPECT_NEAR(td.tail[k], sim.marginal_tail[k], 0.03) << k;
}

TEST(TailDistribution, AsymptoticTailIsDoublyExponential) {
  // Sanity link to Mitzenmacher's s_i: the finite-N lower-model tail at
  // moderate N should be close to s_i for small i.
  const double rho = 0.7;
  const BoundModel model(Params{6, 2, rho, 1.0}, 3, BoundKind::Lower);
  const auto td = marginal_queue_tail(model, 4);
  for (int i = 1; i <= 3; ++i) {
    const double s_i = rlb::sqd::asymptotic_queue_tail(rho, 2, i);
    EXPECT_NEAR(td.tail[i], s_i, 0.05) << i;
  }
}

TEST(TailDistribution, UpperDominatesLower) {
  const Params p{3, 2, 0.6, 1.0};
  const auto lo = marginal_queue_tail(BoundModel(p, 2, BoundKind::Lower), 10);
  const auto hi = marginal_queue_tail(BoundModel(p, 2, BoundKind::Upper), 10);
  // Stochastic ordering of workloads shows up in the mean; individual tail
  // points should also be ordered for this configuration.
  EXPECT_LE(lo.mean_queue_length(), hi.mean_queue_length() + 1e-9);
}

TEST(TailDistribution, RejectsNegativeKmax) {
  const BoundModel model(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Lower);
  EXPECT_THROW(marginal_queue_tail(model, -1), std::invalid_argument);
}

}  // namespace
