#include "sqd/transitions.h"

#include <gtest/gtest.h>

#include "statespace/shapes.h"

namespace {

namespace ss = rlb::statespace;
using rlb::sqd::all_transitions;
using rlb::sqd::arrival_group_probability;
using rlb::sqd::arrival_transitions;
using rlb::sqd::departure_transitions;
using rlb::sqd::Params;
using ss::State;

double total_rate(const std::vector<rlb::sqd::Transition>& ts) {
  double s = 0.0;
  for (const auto& t : ts) s += t.rate;
  return s;
}

TEST(Transitions, ArrivalRatesSumToLambdaN) {
  for (int n : {2, 3, 5, 8}) {
    for (int d = 1; d <= n; ++d) {
      const Params p{n, d, 0.7, 1.0};
      // Try several states with different tie structures.
      std::vector<State> states;
      states.push_back(State(n, 0));
      states.push_back(State(n, 2));
      State distinct(n);
      for (int i = 0; i < n; ++i) distinct[i] = n - i;
      states.push_back(distinct);
      for (const State& m : states) {
        EXPECT_NEAR(total_rate(arrival_transitions(m, p)),
                    p.total_arrival_rate(), 1e-10)
            << ss::to_string(m) << " d=" << d;
      }
    }
  }
}

TEST(Transitions, DistinctStateRatesMatchPaperFormula) {
  // All distinct: m = (3, 2, 1); paper: rate to m + e_i is
  // C(i-1, d-1)/C(N, d) * lambda*N for i >= d (1-based).
  const Params p{3, 2, 0.5, 1.0};
  const State m{3, 2, 1};
  const auto ts = arrival_transitions(m, p);
  // C(3,2) = 3; i=2: C(1,1)=1 -> 1/3; i=3: C(2,1)=2 -> 2/3. i=1: zero.
  ASSERT_EQ(ts.size(), 2u);
  double rate_e2 = 0.0, rate_e3 = 0.0;
  for (const auto& t : ts) {
    if (t.to == State{3, 3, 1}) rate_e2 = t.rate;
    if (t.to == State{3, 2, 2}) rate_e3 = t.rate;
  }
  EXPECT_NEAR(rate_e2, 1.0 / 3.0 * 1.5, 1e-12);
  EXPECT_NEAR(rate_e3, 2.0 / 3.0 * 1.5, 1e-12);
}

TEST(Transitions, TieGroupArrivalEntersHead) {
  // m = (2, 1, 1): arrivals into the tied group must produce (2, 2, 1).
  const Params p{3, 2, 0.5, 1.0};
  const State m{2, 1, 1};
  const auto ts = arrival_transitions(m, p);
  bool found = false;
  for (const auto& t : ts) {
    EXPECT_NE(t.to, (State{2, 1, 2}));  // never an unsorted/tail arrival
    if (t.to == State{2, 2, 1}) {
      found = true;
      // Group [2..3] 1-based: (C(3,2) - C(1,2))/C(3,2) = 3/3 = 1... minus
      // nothing: C(1,2) = 0, so probability 1 of joining the tied pair.
      EXPECT_NEAR(t.rate, p.total_arrival_rate(), 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Transitions, JsqSendsEverythingToShortest) {
  const Params p{4, 4, 0.9, 1.0};
  const State m{5, 4, 2, 1};
  const auto ts = arrival_transitions(m, p);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].to, (State{5, 4, 2, 2}));
  EXPECT_NEAR(ts[0].rate, p.total_arrival_rate(), 1e-12);
}

TEST(Transitions, RandomRoutingIsUniform) {
  const Params p{4, 1, 0.6, 1.0};
  const State m{4, 3, 2, 1};
  const auto ts = arrival_transitions(m, p);
  ASSERT_EQ(ts.size(), 4u);
  for (const auto& t : ts)
    EXPECT_NEAR(t.rate, p.total_arrival_rate() / 4.0, 1e-12);
}

TEST(Transitions, DeparturesFromBusyGroupsOnly) {
  const Params p{4, 2, 0.5, 1.0};
  const State m{3, 1, 1, 0};
  const auto ts = departure_transitions(m, p);
  // Groups: {3}, {1,1}, {0}: two departing groups.
  ASSERT_EQ(ts.size(), 2u);
  double rate_top = 0.0, rate_mid = 0.0;
  for (const auto& t : ts) {
    if (t.to == State{2, 1, 1, 0}) rate_top = t.rate;
    if (t.to == State{3, 1, 0, 0}) rate_mid = t.rate;
  }
  EXPECT_NEAR(rate_top, 1.0, 1e-12);
  EXPECT_NEAR(rate_mid, 2.0, 1e-12);  // group of size 2
}

TEST(Transitions, DepartureRatesSumToBusyServers) {
  const Params p{5, 3, 0.5, 2.0};
  const State m{4, 4, 1, 1, 0};
  EXPECT_NEAR(total_rate(departure_transitions(m, p)), 4 * p.mu, 1e-12);
}

TEST(Transitions, EmptySystemHasNoDepartures) {
  const Params p{3, 2, 0.5, 1.0};
  EXPECT_TRUE(departure_transitions(State{0, 0, 0}, p).empty());
}

TEST(Transitions, AllTransitionsConcatenates) {
  const Params p{3, 2, 0.5, 1.0};
  const State m{2, 1, 0};
  EXPECT_EQ(all_transitions(m, p).size(),
            arrival_transitions(m, p).size() +
                departure_transitions(m, p).size());
}

TEST(Transitions, GroupProbabilitiesFormDistribution) {
  // Over any tie structure the group probabilities must sum to 1.
  for (int n : {3, 6, 10}) {
    for (int d = 1; d <= n; d += 2) {
      const Params p{n, d, 0.5, 1.0};
      // Partition n into groups of sizes 1..; use a few random-ish splits.
      const std::vector<std::vector<int>> splits = {
          std::vector<int>(n, 1),     // all distinct
          {n},                        // all tied
      };
      for (const auto& split : splits) {
        double sum = 0.0;
        int head = 0;
        for (int g : split) {
          sum += arrival_group_probability(head, g, p);
          head += g;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12) << n << ' ' << d;
      }
    }
  }
}

TEST(Transitions, TargetsStaySorted) {
  const Params p{6, 3, 0.8, 1.0};
  const State m{4, 4, 3, 2, 2, 2};
  for (const auto& t : all_transitions(m, p))
    EXPECT_TRUE(ss::is_valid_state(t.to)) << ss::to_string(t.to);
}

}  // namespace
