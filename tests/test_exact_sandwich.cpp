// The paper's central claim, verified against exact (truncated-CTMC)
// solutions of the ORIGINAL SQ(d) process: lower bound <= exact <= upper
// bound, with a remarkably tight lower bound.
#include <cmath>

#include <gtest/gtest.h>

#include "qbd/solver.h"
#include "sqd/bound_solver.h"
#include "sqd/exact_reference.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::ExactResult;
using rlb::sqd::Params;

// Truncation cap per server count: keeps the dense GTH solve fast while
// holding the truncation mass far below the bound gaps at the loads used.
int cap_for(int n) { return n == 2 ? 70 : (n == 3 ? 36 : 26); }

struct Case {
  int n, d, t;
  double rho;
};

class SandwichTest : public ::testing::TestWithParam<Case> {};

TEST_P(SandwichTest, LowerExactUpperOrdering) {
  const Case c = GetParam();
  const Params p{c.n, c.d, c.rho, 1.0};
  const ExactResult exact = rlb::sqd::solve_exact_truncated(p, cap_for(c.n));
  // Truncation deflates the exact mean by roughly (tail mass) x (jobs per
  // tail state); widen the one-sided assertions by a conservative multiple.
  const double slack =
      std::max(1e-6, 20.0 * exact.truncation_mass * cap_for(c.n));
  ASSERT_LT(exact.truncation_mass, 1e-3);

  const double lower =
      rlb::sqd::solve_bound(BoundModel(p, c.t, BoundKind::Lower))
          .mean_waiting_jobs;
  EXPECT_LE(lower, exact.mean_waiting_jobs + slack) << "lower bound violated";

  try {
    const double upper =
        rlb::sqd::solve_bound(BoundModel(p, c.t, BoundKind::Upper))
            .mean_waiting_jobs;
    EXPECT_GE(upper, exact.mean_waiting_jobs - slack)
        << "upper bound violated";
  } catch (const rlb::qbd::UnstableError&) {
    // The upper model may be unstable at small T / high rho; the bound
    // then holds vacuously (+infinity).
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SandwichTest,
    ::testing::Values(Case{2, 2, 1, 0.3}, Case{2, 2, 1, 0.6},
                      Case{2, 2, 2, 0.6}, Case{2, 2, 2, 0.8},
                      Case{2, 2, 3, 0.9}, Case{3, 2, 1, 0.5},
                      Case{3, 2, 2, 0.3}, Case{3, 2, 2, 0.6},
                      Case{3, 2, 2, 0.75}, Case{3, 2, 3, 0.8},
                      Case{3, 3, 2, 0.6}, Case{3, 3, 2, 0.8},
                      Case{3, 1, 2, 0.5}, Case{4, 2, 2, 0.5},
                      Case{4, 3, 2, 0.65}, Case{4, 4, 2, 0.6}));

TEST(SandwichTightness, LowerBoundRemarkablyAccurate) {
  // Paper Section V: "the lower bounds are remarkably tight". Check the
  // relative error against the exact solution for the Figure 10(a,b)
  // configuration N = 3 at several loads.
  for (double rho : {0.3, 0.5, 0.7, 0.8}) {
    const Params p{3, 2, rho, 1.0};
    const ExactResult exact = rlb::sqd::solve_exact_truncated(p, cap_for(3));
    const double lower =
        rlb::sqd::solve_bound(BoundModel(p, 3, BoundKind::Lower)).mean_delay;
    const double rel = std::abs(exact.mean_delay - lower) / exact.mean_delay;
    EXPECT_LT(rel, 0.04) << "rho=" << rho;  // within 4%
  }
}

TEST(SandwichTightness, UpperBoundTightensFromT2ToT3) {
  // Figure 10(a) vs 10(b): at N = 3, rho = 0.5, the T = 3 upper bound is
  // closer to the exact value than the T = 2 one.
  const Params p{3, 2, 0.5, 1.0};
  const ExactResult exact = rlb::sqd::solve_exact_truncated(p, cap_for(3));
  const double u2 =
      rlb::sqd::solve_bound(BoundModel(p, 2, BoundKind::Upper)).mean_delay;
  const double u3 =
      rlb::sqd::solve_bound(BoundModel(p, 3, BoundKind::Upper)).mean_delay;
  EXPECT_LT(std::abs(u3 - exact.mean_delay), std::abs(u2 - exact.mean_delay));
}

TEST(ExactReference, Sq1IsIndependentMm1s) {
  // d = 1 splits the Poisson stream uniformly: each server is M/M/1 with
  // arrival rate lambda.
  const Params p{3, 1, 0.6, 1.0};
  const ExactResult exact = rlb::sqd::solve_exact_truncated(p, cap_for(3));
  const rlb::sqd::Mm1 ref{0.6, 1.0};
  EXPECT_NEAR(exact.mean_jobs, 3 * ref.mean_jobs(), 1e-3);
  EXPECT_NEAR(exact.mean_delay, ref.mean_sojourn(), 1e-3);
}

TEST(ExactReference, TruncationMassDecaysWithCap) {
  const Params p{2, 2, 0.8, 1.0};
  const ExactResult a = rlb::sqd::solve_exact_truncated(p, 20);
  const ExactResult b = rlb::sqd::solve_exact_truncated(p, 40);
  EXPECT_LT(b.truncation_mass, a.truncation_mass);
  EXPECT_LT(b.truncation_mass, 1e-4);
}

TEST(ExactReference, JsqBeatsRandomRouting) {
  const double rho = 0.7;
  const ExactResult jsq =
      rlb::sqd::solve_exact_truncated(Params{3, 3, rho, 1.0}, cap_for(3));
  const ExactResult sq1 =
      rlb::sqd::solve_exact_truncated(Params{3, 1, rho, 1.0}, cap_for(3));
  EXPECT_LT(jsq.mean_delay, sq1.mean_delay);
}

}  // namespace
