#include "sim/trace.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "sim/arrival_process.h"
#include "sim/rng.h"

#ifndef RLB_SOURCE_DIR
#error "RLB_SOURCE_DIR must point at the repository root"
#endif

namespace {

using namespace rlb::sim;

Trace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

TEST(TraceParser, ParsesTimestampsBatchesAndHorizon) {
  const Trace t = parse(
      "# comment\n"
      "0.5\n"
      "1.0 3\n"
      "\n"
      "2.5, 2\n"
      "horizon=10\n");
  ASSERT_EQ(t.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(t.entries[0].time, 0.5);
  EXPECT_EQ(t.entries[0].batch, 1u);
  EXPECT_DOUBLE_EQ(t.entries[1].time, 1.0);
  EXPECT_EQ(t.entries[1].batch, 3u);
  EXPECT_DOUBLE_EQ(t.entries[2].time, 2.5);
  EXPECT_EQ(t.entries[2].batch, 2u);
  EXPECT_DOUBLE_EQ(t.horizon, 10.0);
  EXPECT_EQ(t.total_jobs(), 6u);
  EXPECT_DOUBLE_EQ(t.mean_rate(), 0.6);
}

TEST(TraceParser, HorizonDefaultsToLastTimestamp) {
  const Trace t = parse("1.0\n4.0\n");
  EXPECT_DOUBLE_EQ(t.horizon, 4.0);
}

TEST(TraceParser, RejectsEmptyInput) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("# only comments\n\n"), std::invalid_argument);
}

TEST(TraceParser, RejectsNonMonotoneTimestamps) {
  EXPECT_THROW(parse("2.0\n1.0\n"), std::invalid_argument);
}

TEST(TraceParser, AcceptsEqualTimestamps) {
  // Simultaneous arrivals are legal — equivalent to a batch.
  const Trace t = parse("1.0\n1.0\n");
  EXPECT_EQ(t.total_jobs(), 2u);
}

TEST(TraceParser, RejectsNegativeAndNonFiniteTimestamps) {
  EXPECT_THROW(parse("-1.0\n"), std::invalid_argument);
  EXPECT_THROW(parse("nan\n"), std::invalid_argument);
  EXPECT_THROW(parse("inf\n"), std::invalid_argument);
}

TEST(TraceParser, RejectsMalformedLines) {
  EXPECT_THROW(parse("abc\n"), std::invalid_argument);
  EXPECT_THROW(parse("1.0 2 3\n"), std::invalid_argument);   // trailing field
  EXPECT_THROW(parse("1.0 2.5\n"), std::invalid_argument);   // batch integer
  EXPECT_THROW(parse("1.0 0\n"), std::invalid_argument);     // batch >= 1
  EXPECT_THROW(parse("1.0 -2\n"), std::invalid_argument);
  EXPECT_THROW(parse("1.0garbage\n"), std::invalid_argument);
}

TEST(TraceParser, RejectsBadHorizon) {
  EXPECT_THROW(parse("1.0\nhorizon=0.5\n"), std::invalid_argument);
  EXPECT_THROW(parse("1.0\nhorizon=abc\n"), std::invalid_argument);
  EXPECT_THROW(parse("1.0\nhorizon=inf\n"), std::invalid_argument);
}

TEST(TraceParser, ErrorNamesTheOffendingLine) {
  try {
    parse("0.5\n1.0\n0.25\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceParser, WriterReaderRoundTripIsExact) {
  Trace t;
  t.entries = {{0.125, 1}, {1.0 / 3.0, 4}, {2.71828182845904523, 1}};
  t.horizon = 7.5;
  std::ostringstream out;
  write_trace(out, t);
  const Trace back = parse(out.str());
  ASSERT_EQ(back.entries.size(), t.entries.size());
  for (std::size_t i = 0; i < t.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].time, t.entries[i].time) << i;  // bit-exact
    EXPECT_EQ(back.entries[i].batch, t.entries[i].batch) << i;
  }
  EXPECT_EQ(back.horizon, t.horizon);
}

TEST(TraceParser, WriterOmitsRedundantHorizon) {
  Trace t;
  t.entries = {{1.0, 1}, {2.0, 1}};
  t.horizon = 2.0;  // equal to the last timestamp: the parser's default
  std::ostringstream out;
  write_trace(out, t);
  EXPECT_EQ(out.str().find("horizon"), std::string::npos);
  EXPECT_DOUBLE_EQ(parse(out.str()).horizon, 2.0);
}

TEST(TraceParser, LoadTraceNamesThePathOnError) {
  try {
    (void)load_trace("/nonexistent/rlb.trace");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/rlb.trace"),
              std::string::npos);
  }
}

TEST(TraceParser, GoldenTraceLoadsWithKnownTotals) {
  const Trace t =
      load_trace(std::string(RLB_SOURCE_DIR) + "/tests/data/golden.trace");
  EXPECT_EQ(t.entries.size(), 29u);
  EXPECT_EQ(t.total_jobs(), 40u);
  EXPECT_DOUBLE_EQ(t.horizon, 20.0);
  EXPECT_DOUBLE_EQ(t.mean_rate(), 2.0);
}

TEST(TraceArrival, ReplaysEpochsAsGaps) {
  Trace t;
  t.entries = {{1.0, 1}, {3.0, 2}, {4.5, 1}};
  t.horizon = 6.0;
  TraceArrivalProcess a(t);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(a.next(rng), 1.0);  // to the first epoch
  EXPECT_DOUBLE_EQ(a.next(rng), 2.0);  // 1.0 -> 3.0
  EXPECT_DOUBLE_EQ(a.next(rng), 0.0);  // 2nd job of the batch
  EXPECT_DOUBLE_EQ(a.next(rng), 1.5);  // 3.0 -> 4.5
  // Wrap: (horizon - 4.5) + 1.0 back to the first epoch of cycle 2.
  EXPECT_DOUBLE_EQ(a.next(rng), 2.5);
  EXPECT_DOUBLE_EQ(a.next(rng), 2.0);
}

TEST(TraceArrival, ConsumesNoRandomness) {
  Trace t;
  t.entries = {{0.5, 2}, {2.0, 1}};
  t.horizon = 4.0;
  TraceArrivalProcess a(t), b(t);
  Rng rng1(1), rng2(999);  // different seeds: replay must not care
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.next(rng1), b.next(rng2)) << i;
  EXPECT_EQ(rng1.next_u64(), Rng(1).next_u64());  // stream untouched
}

TEST(TraceArrival, CloneRestartsAndResetRewinds) {
  Trace t;
  t.entries = {{1.0, 1}, {2.0, 1}};
  t.horizon = 3.0;
  TraceArrivalProcess a(t);
  Rng rng(1);
  (void)a.next(rng);
  (void)a.next(rng);
  // clone() copies mid-replay state (the ArrivalProcess contract); each
  // replica resets its copy to replay from its own t = 0.
  const auto mid = a.clone();
  EXPECT_DOUBLE_EQ(mid->next(rng), a.next(rng));
  auto fresh = a.clone();
  fresh->reset();
  EXPECT_DOUBLE_EQ(fresh->next(rng), 1.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.next(rng), 1.0);
}

TEST(TraceArrival, MeanRateAndNameComeFromTheTrace) {
  Trace t;
  t.entries = {{1.0, 3}, {2.0, 1}};
  t.horizon = 8.0;
  TraceArrivalProcess a(t);
  EXPECT_DOUBLE_EQ(a.mean_rate(), 0.5);
  EXPECT_EQ(a.name(), "trace(4 jobs/cycle)");
}

TEST(TraceValidate, RejectsBadTraces) {
  Trace empty;
  empty.horizon = 1.0;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  Trace bad_batch;
  bad_batch.entries = {{1.0, 0}};
  bad_batch.horizon = 2.0;
  EXPECT_THROW(bad_batch.validate(), std::invalid_argument);

  Trace short_horizon;
  short_horizon.entries = {{2.0, 1}};
  short_horizon.horizon = 1.0;
  EXPECT_THROW(short_horizon.validate(), std::invalid_argument);

  Trace zero_horizon;  // a one-entry trace at t = 0 has no cycle length
  zero_horizon.entries = {{0.0, 1}};
  zero_horizon.horizon = 0.0;
  EXPECT_THROW(zero_horizon.validate(), std::invalid_argument);
}

/// The message parse_trace raises for `text`; fails the test if the
/// trace parses. Trace files are user-authored, so the messages must
/// carry the 1-based line number and echo the offending line.
std::string rejection_message(const std::string& text) {
  try {
    (void)parse(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "trace unexpectedly parsed: " << text;
  return {};
}

TEST(TraceParser, RejectionMessagesCarryLineNumberAndOffendingLine) {
  EXPECT_EQ(rejection_message("abc\n"),
            "trace line 1: timestamp is not a finite number — \"abc\"");
  EXPECT_EQ(rejection_message("1.0\n2.0 1.5\nhorizon=3\n"),
            "trace line 2: batch must be an integer >= 1 — \"2.0 1.5\"");
  EXPECT_EQ(rejection_message("1.0\n2.0 0\nhorizon=3\n"),
            "trace line 2: batch must be an integer >= 1 — \"2.0 0\"");
  EXPECT_EQ(rejection_message("-1.0\n"),
            "trace line 1: timestamp is negative — \"-1.0\"");
  EXPECT_EQ(
      rejection_message("2.0\n1.0\nhorizon=3\n"),
      "trace line 2: timestamps must be non-decreasing — \"1.0\"");
  EXPECT_EQ(rejection_message("1.0 2 3\n"),
            "trace line 1: trailing field (expected <time> [<batch>]) — "
            "\"1.0 2 3\"");
  EXPECT_EQ(rejection_message("1.0\nhorizon\n"),
            "trace line 2: horizon directive needs horizon=<value> — "
            "\"horizon\"");
  EXPECT_EQ(rejection_message("1.0\nhorizon=-2\n"),
            "trace line 2: horizon must be a finite positive number — "
            "\"horizon=-2\"");
  // Comments and blank lines still count toward the line number — the
  // number must match what the user's editor shows.
  EXPECT_EQ(rejection_message("# header\n\n1.0\nbad\n"),
            "trace line 4: timestamp is not a finite number — \"bad\"");
}

}  // namespace
