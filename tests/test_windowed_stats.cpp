#include "sim/windowed_stats.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace {

using namespace rlb::sim;

TEST(WindowedMoments, BucketsByTime) {
  WindowedMoments wm(10.0);
  wm.add(0.0, 1.0);
  wm.add(9.999, 3.0);
  wm.add(10.0, 5.0);   // exactly on the edge: belongs to window 1
  wm.add(25.0, 7.0);
  ASSERT_EQ(wm.windows(), 3u);
  EXPECT_EQ(wm.count(0), 2u);
  EXPECT_DOUBLE_EQ(wm.mean(0), 2.0);
  EXPECT_EQ(wm.count(1), 1u);
  EXPECT_DOUBLE_EQ(wm.mean(1), 5.0);
  EXPECT_EQ(wm.count(2), 1u);
  EXPECT_DOUBLE_EQ(wm.window_start(2), 20.0);
}

TEST(WindowedMoments, UntouchedWindowsAreEmpty) {
  WindowedMoments wm(1.0);
  wm.add(5.5, 2.0);
  ASSERT_EQ(wm.windows(), 6u);
  for (std::size_t w = 0; w < 5; ++w) EXPECT_EQ(wm.count(w), 0u) << w;
  EXPECT_EQ(wm.count(5), 1u);
}

TEST(WindowedMoments, MergeMatchesSingleStream) {
  WindowedMoments a(2.0), b(2.0), all(2.0);
  const std::vector<std::pair<double, double>> obs{
      {0.5, 1.0}, {1.5, 2.0}, {2.5, 3.0}, {5.0, 4.0}, {7.5, 5.0}};
  for (std::size_t i = 0; i < obs.size(); ++i) {
    all.add(obs[i].first, obs[i].second);
    (i % 2 == 0 ? a : b).add(obs[i].first, obs[i].second);
  }
  a.merge(b);
  ASSERT_EQ(a.windows(), all.windows());
  for (std::size_t w = 0; w < all.windows(); ++w) {
    EXPECT_EQ(a.count(w), all.count(w)) << w;
    if (all.count(w) > 0) EXPECT_DOUBLE_EQ(a.mean(w), all.mean(w)) << w;
  }
}

TEST(WindowedMoments, MergeIsOrderInsensitive) {
  // Integer-valued observations keep every sum exactly representable, so
  // merge order-insensitivity is bit-exact, not just approximate.
  const auto build = [](std::uint64_t salt) {
    WindowedMoments wm(4.0);
    for (std::uint64_t i = 0; i < 50; ++i)
      wm.add(static_cast<double>((i * 7 + salt) % 32),
             static_cast<double>((i * 13 + salt) % 11));
    return wm;
  };
  WindowedMoments ab = build(1), ba = build(2);
  const WindowedMoments a = build(1), b = build(2);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  ASSERT_EQ(ab.windows(), ba.windows());
  for (std::size_t w = 0; w < ab.windows(); ++w) {
    EXPECT_EQ(ab.count(w), ba.count(w)) << w;
    if (ab.count(w) == 0) continue;
    EXPECT_EQ(ab.mean(w), ba.mean(w)) << w;
    EXPECT_EQ(ab.window(w).min(), ba.window(w).min()) << w;
    EXPECT_EQ(ab.window(w).max(), ba.window(w).max()) << w;
  }
}

TEST(WindowedMoments, MergeGrowsToTheLongerRun) {
  WindowedMoments a(1.0), b(1.0);
  a.add(0.5, 1.0);
  b.add(4.5, 2.0);
  a.merge(b);
  ASSERT_EQ(a.windows(), 5u);
  EXPECT_EQ(a.count(4), 1u);
}

TEST(WindowedMoments, Validates) {
  EXPECT_THROW(WindowedMoments(0.0), std::invalid_argument);
  EXPECT_THROW(WindowedMoments(-1.0), std::invalid_argument);
  WindowedMoments wm(1.0);
  EXPECT_THROW(wm.add(-0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(wm.window(0), std::invalid_argument);
  WindowedMoments other(2.0);
  EXPECT_THROW(wm.merge(other), std::invalid_argument);
}

TEST(WindowedQuantiles, ExactWhileSamplesFit) {
  WindowedQuantiles wq(10.0, 100, 7);
  for (int i = 0; i < 100; ++i)
    wq.add(5.0, static_cast<double>(i));       // window 0: 0..99
  for (int i = 0; i < 50; ++i)
    wq.add(15.0, static_cast<double>(10 * i));  // window 1: 0..490
  EXPECT_EQ(wq.count(0), 100u);
  EXPECT_DOUBLE_EQ(wq.quantile(0, 0.5), 50.0);  // rank round(q*(n-1))
  EXPECT_DOUBLE_EQ(wq.quantile(0, 0.99), 98.0);
  EXPECT_DOUBLE_EQ(wq.quantile(1, 1.0), 490.0);
}

TEST(WindowedQuantiles, SeedingIsIndependentOfTouchOrder) {
  // Window k's reservoir seeds from (seed, k), never from which window
  // was touched first: filling windows in different orders gives
  // bit-identical reservoirs.
  WindowedQuantiles fwd(1.0, 8, 99), rev(1.0, 8, 99);
  for (int w = 0; w < 4; ++w)
    for (int i = 0; i < 100; ++i)
      fwd.add(w + 0.5, w * 1000.0 + i);
  for (int w = 3; w >= 0; --w)
    for (int i = 0; i < 100; ++i)
      rev.add(w + 0.5, w * 1000.0 + i);
  ASSERT_EQ(fwd.windows(), rev.windows());
  for (std::size_t w = 0; w < fwd.windows(); ++w)
    for (double q : {0.1, 0.5, 0.9, 0.99})
      EXPECT_EQ(fwd.quantile(w, q), rev.quantile(w, q)) << w << " " << q;
}

TEST(WindowedQuantiles, MergeMatchesSingleStreamWhileExact) {
  WindowedQuantiles a(5.0, 1000, 3), b(5.0, 1000, 3), all(5.0, 1000, 3);
  for (int i = 0; i < 200; ++i) {
    const double t = (i % 3) * 5.0 + 1.0;
    const double x = static_cast<double>(i);
    all.add(t, x);
    (i % 2 == 0 ? a : b).add(t, x);
  }
  a.merge(b);
  ASSERT_EQ(a.windows(), all.windows());
  for (std::size_t w = 0; w < all.windows(); ++w) {
    EXPECT_EQ(a.count(w), all.count(w)) << w;
    for (double q : {0.25, 0.5, 0.95})
      EXPECT_DOUBLE_EQ(a.quantile(w, q), all.quantile(w, q)) << w;
  }
}

TEST(WindowedQuantiles, Validates) {
  EXPECT_THROW(WindowedQuantiles(0.0, 10, 1), std::invalid_argument);
  EXPECT_THROW(WindowedQuantiles(1.0, 0, 1), std::invalid_argument);
  WindowedQuantiles wq(1.0, 10, 1);
  EXPECT_THROW(wq.quantile(0, 0.5), std::invalid_argument);
  WindowedQuantiles narrow(2.0, 10, 1), small(1.0, 5, 1);
  EXPECT_THROW(wq.merge(narrow), std::invalid_argument);
  EXPECT_THROW(wq.merge(small), std::invalid_argument);
}

}  // namespace
