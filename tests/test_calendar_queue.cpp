#include "sim/calendar_queue.h"

#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace {

using rlb::sim::CalendarQueue;
using Event = std::pair<double, std::int32_t>;

/// Reference ordering: the exact heap the legacy cluster engine uses.
using RefHeap =
    std::priority_queue<Event, std::vector<Event>, std::greater<>>;

TEST(CalendarQueue, PopsInTimeOrder) {
  CalendarQueue cq;
  cq.push(3.5, 0);
  cq.push(1.25, 1);
  cq.push(2.0, 2);
  cq.push(0.75, 3);
  EXPECT_EQ(cq.size(), 4u);
  EXPECT_EQ(cq.pop(), Event(0.75, 3));
  EXPECT_EQ(cq.pop(), Event(1.25, 1));
  EXPECT_EQ(cq.pop(), Event(2.0, 2));
  EXPECT_EQ(cq.pop(), Event(3.5, 0));
  EXPECT_TRUE(cq.empty());
}

TEST(CalendarQueue, BreaksTimeTiesById) {
  CalendarQueue cq;
  cq.push(1.0, 7);
  cq.push(1.0, 2);
  cq.push(1.0, 5);
  EXPECT_EQ(cq.pop(), Event(1.0, 2));
  EXPECT_EQ(cq.pop(), Event(1.0, 5));
  EXPECT_EQ(cq.pop(), Event(1.0, 7));
}

TEST(CalendarQueue, TopDoesNotRemove) {
  CalendarQueue cq;
  cq.push(2.5, 1);
  EXPECT_EQ(cq.top(), Event(2.5, 1));
  EXPECT_EQ(cq.top(), Event(2.5, 1));
  EXPECT_EQ(cq.size(), 1u);
  EXPECT_EQ(cq.min_time(), 2.5);
}

TEST(CalendarQueue, FarFutureEventsAreReachable) {
  // Events many "years" past the cursor force the full-scan fallback.
  CalendarQueue cq(1.0, 4);
  cq.push(1e9, 0);
  EXPECT_EQ(cq.pop(), Event(1e9, 0));
  cq.push(0.5, 1);
  cq.push(1e12, 2);
  EXPECT_EQ(cq.pop(), Event(0.5, 1));
  EXPECT_EQ(cq.pop(), Event(1e12, 2));
}

TEST(CalendarQueue, PushBehindCursorIsSeen) {
  CalendarQueue cq(1.0, 8);
  cq.push(100.0, 0);
  EXPECT_EQ(cq.top(), Event(100.0, 0));  // cursor now far ahead
  cq.push(1.0, 1);                       // behind the cursor
  EXPECT_EQ(cq.pop(), Event(1.0, 1));
  EXPECT_EQ(cq.pop(), Event(100.0, 0));
}

TEST(CalendarQueue, ResizesWithLoad) {
  CalendarQueue cq(1.0, 4);
  for (int i = 0; i < 1000; ++i) cq.push(static_cast<double>(i) * 0.1, i);
  EXPECT_GT(cq.buckets(), 4u);  // grew
  double prev = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const auto [t, id] = cq.pop();
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_TRUE(cq.empty());
  EXPECT_LT(cq.buckets(), 1000u);  // shrank back down
}

TEST(CalendarQueue, RejectsBadInputs) {
  EXPECT_THROW(CalendarQueue(0.0, 4), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(1.0, 0), std::invalid_argument);
  CalendarQueue cq;
  EXPECT_THROW(cq.push(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cq.pop()), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cq.top()), std::invalid_argument);
}

TEST(CalendarQueue, MatchesReferenceHeapUnderRandomWorkload) {
  // Interleaved pushes and pops with clustered, tied, and far-flung
  // times; every pop must match the legacy heap's order exactly.
  rlb::sim::Rng rng(2026);
  CalendarQueue cq;
  RefHeap ref;
  std::int32_t next_id = 0;
  double now = 0.0;
  for (int step = 0; step < 20'000; ++step) {
    const auto op = rng.uniform_int(10);
    if (op < 6 || ref.empty()) {
      double t = now;
      const auto kind = rng.uniform_int(4);
      if (kind == 0)
        t = now + static_cast<double>(rng.uniform_int(1000)) / 997.0;
      else if (kind == 1)
        t = now + 1e6;  // far future
      else if (kind == 2 && !ref.empty())
        t = ref.top().first;  // exact tie with the current minimum
      cq.push(t, next_id);
      ref.emplace(t, next_id);
      ++next_id;
    } else {
      const Event expected = ref.top();
      ref.pop();
      EXPECT_EQ(cq.pop(), expected);
      now = expected.first;
    }
    ASSERT_EQ(cq.size(), ref.size());
  }
  while (!ref.empty()) {
    const Event expected = ref.top();
    ref.pop();
    ASSERT_EQ(cq.pop(), expected);
  }
  EXPECT_TRUE(cq.empty());
}

}  // namespace
