#include "linalg/lu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace {

using rlb::linalg::Lu;
using rlb::linalg::Matrix;
using rlb::linalg::Vector;

TEST(Lu, Solves2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const Vector x = rlb::linalg::solve(a, rlb::linalg::Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const Vector x = rlb::linalg::solve(a, rlb::linalg::Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(Lu lu(a), std::runtime_error);
}

TEST(Lu, RandomRoundTrip) {
  rlb::sim::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 20 + trial * 7;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
      a(i, i) += n;  // diagonally dominant -> well conditioned
    }
    Vector x_true(n);
    for (auto& v : x_true) v = rng.next_double() * 2.0 - 1.0;
    const Vector b = rlb::linalg::mat_vec(a, x_true);
    const Vector x = rlb::linalg::solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  rlb::sim::Rng rng(7);
  const std::size_t n = 30;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() - 0.5;
    a(i, i) += 5.0;
  }
  const Matrix inv = rlb::linalg::inverse(a);
  const Matrix prod = a * inv;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Lu, MatrixRhsSolve) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 0;
  a(1, 0) = 0;
  a(1, 1) = 2;
  Matrix b(2, 2);
  b(0, 0) = 6;
  b(0, 1) = 3;
  b(1, 0) = 4;
  b(1, 1) = 2;
  const Matrix x = rlb::linalg::solve(a, b);
  EXPECT_NEAR(x(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 1.0, 1e-12);
}

TEST(Lu, SolveTransposed) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 0;
  a(1, 1) = 1;
  // x^T A = b^T with b = (1, 4) -> x solves A^T x = b: x = (1, 2).
  const Vector x = rlb::linalg::solve_transposed(a, {1.0, 4.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

}  // namespace
