#include "util/rootfind.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using rlb::util::find_root;

TEST(FindRoot, LinearFunction) {
  const auto r = find_root([](double x) { return 2.0 * x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.5, 1e-12);
}

TEST(FindRoot, Quadratic) {
  const auto r = find_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(FindRoot, Transcendental) {
  // x = e^{-x} -> x ~ 0.567143 (omega constant).
  const auto r =
      find_root([](double x) { return std::exp(-x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.5671432904097838, 1e-10);
}

TEST(FindRoot, EndpointRoot) {
  const auto r = find_root([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
}

TEST(FindRoot, RequiresBracket) {
  EXPECT_THROW(find_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(FindRoot, SteepFunction) {
  const auto r = find_root(
      [](double x) { return std::pow(x, 20) - 0.5; }, 0.0, 1.0, 1e-13, 500);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(std::pow(r.x, 20), 0.5, 1e-9);
}

}  // namespace
