#include "sqd/waiting_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sqd/bound_solver.h"
#include "sqd/exact_reference.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;
using rlb::sqd::waiting_time_ccdf;
using rlb::sqd::waiting_time_quantile;

TEST(WaitingDistribution, Mm1ClosedForm) {
  // N = 1: the lower bound model IS M/M/1, whose waiting-time law is
  // P(W > t) = rho * exp(-(mu - lambda) t).
  const double rho = 0.7;
  const BoundModel model(Params{1, 1, rho, 1.0}, 1, BoundKind::Lower);
  const std::vector<double> ts{0.0, 0.5, 1.0, 2.0, 5.0};
  const auto ccdf = waiting_time_ccdf(model, ts);
  for (std::size_t k = 0; k < ts.size(); ++k)
    EXPECT_NEAR(ccdf[k], rho * std::exp(-(1.0 - rho) * ts[k]), 1e-8)
        << ts[k];
}

TEST(WaitingDistribution, BasicShapeProperties) {
  const BoundModel model(Params{3, 2, 0.8, 1.0}, 3, BoundKind::Lower);
  const std::vector<double> ts{0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const auto ccdf = waiting_time_ccdf(model, ts);
  for (std::size_t k = 0; k < ts.size(); ++k) {
    EXPECT_GE(ccdf[k], 0.0);
    EXPECT_LE(ccdf[k], 1.0);
    if (k > 0) EXPECT_LE(ccdf[k], ccdf[k - 1] + 1e-12);  // non-increasing
  }
  EXPECT_LT(ccdf.back(), 0.1);  // far tail decays
}

TEST(WaitingDistribution, MeanIntegralApproximatesTrueWait) {
  // E[W] = integral of the CCDF. The snapshot mixture undoes the lower
  // model's jockeying, so its mean should land between the Little-based
  // lower bound and close to the TRUE system's mean waiting time.
  const Params p{3, 2, 0.7, 1.0};
  const BoundModel model(p, 3, BoundKind::Lower);
  const double bound_mean =
      rlb::sqd::solve_lower_improved(model).mean_waiting_time;
  const double true_mean =
      rlb::sqd::solve_exact_truncated(p, 36).mean_waiting_time;

  std::vector<double> ts;
  const double dt = 0.02;
  for (double t = 0.0; t < 40.0; t += dt) ts.push_back(t);
  const auto ccdf = waiting_time_ccdf(model, ts);
  double integral = 0.0;
  for (std::size_t k = 1; k < ts.size(); ++k)
    integral += 0.5 * (ccdf[k] + ccdf[k - 1]) * dt;

  EXPECT_NEAR(integral, true_mean, 0.03 * (1.0 + true_mean));
  EXPECT_GT(integral, bound_mean);  // refines the Little-based value here
  EXPECT_LT(std::abs(integral - true_mean),
            std::abs(bound_mean - true_mean));
}

TEST(WaitingDistribution, ProbPositiveWaitMatchesBusyTarget) {
  // P(W > 0) = P(the joined server is busy); cross-check against a tiny
  // direct computation for N = 1 (it's rho).
  const double rho = 0.55;
  const BoundModel model(Params{1, 1, rho, 1.0}, 2, BoundKind::Lower);
  EXPECT_NEAR(waiting_time_ccdf(model, {0.0})[0], rho, 1e-9);
}

TEST(WaitingDistribution, QuantilesMatchDesSimulation) {
  // The lower model's waiting quantiles should approximate the real SQ(2)
  // system's DES quantiles where the mean bound is tight.
  const int n = 3;
  const double rho = 0.8;
  const BoundModel model(Params{n, 2, rho, 1.0}, 4, BoundKind::Lower);
  const double p95 = waiting_time_quantile(model, 0.95);
  const double p50 = waiting_time_quantile(model, 0.50);

  rlb::sim::ClusterConfig cfg;
  cfg.servers = n;
  cfg.jobs = 800'000;
  cfg.warmup = 80'000;
  cfg.seed = 31415;
  rlb::sim::SqdPolicy policy(n, 2);
  const auto arr = rlb::sim::make_exponential(rho * n);
  const auto svc = rlb::sim::make_exponential(1.0);
  const auto r = rlb::sim::simulate_cluster(cfg, policy, *arr, *svc);
  // DES reports sojourn quantiles; convert waiting quantile to sojourn by
  // comparing against (wait + typical service) loosely: instead compare
  // wait quantiles with sojourn quantiles minus mean service with a wide
  // band (the distributions differ by an independent Exp(1)).
  EXPECT_NEAR(p95 + 1.0, r.p95_sojourn, 0.25 * r.p95_sojourn);
  EXPECT_LT(p50, r.p50_sojourn);
}

TEST(WaitingDistribution, QuantileMonotoneInQ) {
  const BoundModel model(Params{3, 2, 0.75, 1.0}, 3, BoundKind::Lower);
  double prev = 0.0;
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double t = waiting_time_quantile(model, q);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(WaitingDistribution, HigherLoadStochasticallyLarger) {
  const std::vector<double> ts{0.5, 1.0, 2.0};
  const auto low = waiting_time_ccdf(
      BoundModel(Params{3, 2, 0.5, 1.0}, 3, BoundKind::Lower), ts);
  const auto high = waiting_time_ccdf(
      BoundModel(Params{3, 2, 0.9, 1.0}, 3, BoundKind::Lower), ts);
  for (std::size_t k = 0; k < ts.size(); ++k) EXPECT_GT(high[k], low[k]);
}

TEST(WaitingDistribution, DomainChecks) {
  const BoundModel lower(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Lower);
  const BoundModel upper(Params{2, 2, 0.5, 1.0}, 1, BoundKind::Upper);
  EXPECT_THROW(waiting_time_ccdf(upper, {1.0}), std::invalid_argument);
  EXPECT_THROW(waiting_time_ccdf(lower, {-1.0}), std::invalid_argument);
  EXPECT_THROW(waiting_time_quantile(lower, 1.0), std::invalid_argument);
}

}  // namespace

namespace {

TEST(WaitingProfile, ObjectMatchesFreeFunctions) {
  const BoundModel model(Params{3, 2, 0.75, 1.0}, 3, BoundKind::Lower);
  const rlb::sqd::WaitingProfile profile(model);
  const std::vector<double> ts{0.0, 0.5, 1.5, 3.0};
  const auto free_ccdf = waiting_time_ccdf(model, ts);
  for (std::size_t k = 0; k < ts.size(); ++k)
    EXPECT_NEAR(profile.ccdf(ts[k]), free_ccdf[k], 1e-12);
  EXPECT_NEAR(profile.quantile(0.95), waiting_time_quantile(model, 0.95),
              1e-3);
}

TEST(WaitingProfile, RepeatedQueriesAreCheap) {
  const BoundModel model(Params{6, 2, 0.8, 1.0}, 3, BoundKind::Lower);
  const rlb::sqd::WaitingProfile profile(model);
  // Many queries after one solve; just exercise them for sanity.
  double prev = 1.0;
  for (double t = 0.0; t <= 10.0; t += 0.1) {
    const double c = profile.ccdf(t);
    EXPECT_LE(c, prev + 1e-12);
    prev = c;
  }
}

}  // namespace
