#include "engine/bench_check.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace {

using rlb::engine::BenchCheckOptions;
using rlb::engine::BenchCheckReport;
using rlb::engine::BenchStatus;
using rlb::engine::check_benchmarks;

/// A minimal google-benchmark report with one entry per (name, cpu_time
/// ns) pair.
std::string report(
    const std::vector<std::pair<std::string, double>>& entries,
    const std::string& time_unit = "ns") {
  std::string out = "{\"benchmarks\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + entries[i].first +
           "\", \"run_type\": \"iteration\", \"real_time\": " +
           std::to_string(entries[i].second * 1.1) +
           ", \"cpu_time\": " + std::to_string(entries[i].second) +
           ", \"time_unit\": \"" + time_unit + "\"}";
  }
  return out + "]}";
}

TEST(BenchCheck, IdenticalReportsPass) {
  const std::string doc =
      report({{"BM_A/10", 120.0}, {"BM_B/100", 45000.0}});
  const BenchCheckReport r = check_benchmarks(doc, doc, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.warned, 0u);
  ASSERT_EQ(r.rows.size(), 2u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row.status, BenchStatus::kOk);
    EXPECT_DOUBLE_EQ(row.ratio, 1.0);
  }
}

TEST(BenchCheck, DeliberatelySlowedCandidateFails) {
  // The CI contract: a 3x across-the-board slowdown must fail the gate.
  const std::string base =
      report({{"BM_A/10", 400.0}, {"BM_B/100", 45000.0}});
  const std::string slowed =
      report({{"BM_A/10", 1200.0}, {"BM_B/100", 135000.0}});
  const BenchCheckReport r = check_benchmarks(base, slowed, {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failed, 2u);
  EXPECT_EQ(r.rows[0].status, BenchStatus::kFail);
  EXPECT_NEAR(r.rows[0].ratio, 3.0, 1e-12);
  EXPECT_NE(r.describe().find("REGRESSION"), std::string::npos);
  EXPECT_NE(r.github_annotations().find("::error::"), std::string::npos);
}

TEST(BenchCheck, ModerateSlowdownOnlyWarns) {
  const std::string base = report({{"BM_A/10", 1000.0}});
  const std::string slower = report({{"BM_A/10", 1500.0}});  // 1.5x
  const BenchCheckReport r = check_benchmarks(base, slower, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warned, 1u);
  EXPECT_EQ(r.rows[0].status, BenchStatus::kWarn);
  EXPECT_NE(r.github_annotations().find("::warning::"), std::string::npos);
}

TEST(BenchCheck, AbsoluteFloorAbsorbsTinyBenchmarkJitter) {
  // 4x ratio but only 9 ns absolute: below the default 50 ns floor, so
  // the gate must stay quiet — tiny benchmarks jitter in big ratios.
  const std::string base = report({{"BM_Tiny", 3.0}});
  const std::string jittery = report({{"BM_Tiny", 12.0}});
  const BenchCheckReport r = check_benchmarks(base, jittery, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warned, 0u);
  EXPECT_EQ(r.rows[0].status, BenchStatus::kOk);

  // Lowering the floor re-arms the gate for the same data.
  BenchCheckOptions tight;
  tight.min_ns = 1.0;
  const BenchCheckReport r2 = check_benchmarks(base, jittery, tight);
  EXPECT_FALSE(r2.ok());
}

TEST(BenchCheck, ThresholdsAreTunable) {
  BenchCheckOptions strict;
  strict.warn_ratio = 1.05;
  strict.fail_ratio = 1.2;
  const std::string base = report({{"BM_A", 1000.0}});
  const std::string slower = report({{"BM_A", 1300.0}});  // 1.3x
  EXPECT_FALSE(check_benchmarks(base, slower, strict).ok());
  BenchCheckOptions loose;
  loose.fail_ratio = 10.0;
  loose.warn_ratio = 5.0;
  EXPECT_TRUE(check_benchmarks(base, slower, loose).ok());
}

TEST(BenchCheck, NormalizesTimeUnits) {
  // Baseline in microseconds, candidate in nanoseconds: the same speed
  // must compare at ratio 1.
  const std::string base = report({{"BM_A", 2.0}}, "us");
  const std::string cand = report({{"BM_A", 2000.0}}, "ns");
  const BenchCheckReport r = check_benchmarks(base, cand, {});
  EXPECT_TRUE(r.ok());
  EXPECT_NEAR(r.rows[0].ratio, 1.0, 1e-12);
  EXPECT_NEAR(r.rows[0].baseline_ns, 2000.0, 1e-9);
}

TEST(BenchCheck, NewAndRemovedBenchmarksAreReported) {
  const std::string base = report({{"BM_Old", 100.0}, {"BM_Kept", 200.0}});
  const std::string cand = report({{"BM_Kept", 200.0}, {"BM_New", 50.0}});
  const BenchCheckReport r = check_benchmarks(base, cand, {});
  EXPECT_TRUE(r.ok());  // new/removed never fail the gate
  EXPECT_EQ(r.warned, 1u);  // ... but a removed benchmark warns
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].name, "BM_Kept");
  EXPECT_EQ(r.rows[0].status, BenchStatus::kOk);
  EXPECT_EQ(r.rows[1].name, "BM_New");
  EXPECT_EQ(r.rows[1].status, BenchStatus::kNew);
  EXPECT_EQ(r.rows[2].name, "BM_Old");
  EXPECT_EQ(r.rows[2].status, BenchStatus::kRemoved);
  EXPECT_NE(r.github_annotations().find("benchmark removed"),
            std::string::npos);
}

TEST(BenchCheck, SkipsAggregateRows) {
  // Repetition aggregates (mean/median/stddev) must not be compared —
  // the stddev "time" is not a duration at all.
  const std::string base = report({{"BM_A", 100.0}});
  const std::string cand =
      "{\"benchmarks\": ["
      "{\"name\": \"BM_A\", \"run_type\": \"iteration\", "
      "\"cpu_time\": 100.0, \"time_unit\": \"ns\"}, "
      "{\"name\": \"BM_A_stddev\", \"run_type\": \"aggregate\", "
      "\"cpu_time\": 900.0, \"time_unit\": \"ns\"}]}";
  const BenchCheckReport r = check_benchmarks(base, cand, {});
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].name, "BM_A");
}

TEST(BenchCheck, RejectsMalformedInput) {
  const std::string good = report({{"BM_A", 100.0}});
  EXPECT_THROW(static_cast<void>(check_benchmarks("not json", good, {})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(check_benchmarks(good, "{\"no\": 1}", {})),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(check_benchmarks(
          good, report({{"BM_A", 1.0}}, "fortnights"), {})),
      std::invalid_argument);
  BenchCheckOptions bad;
  bad.warn_ratio = 3.0;
  bad.fail_ratio = 2.0;  // warn above fail makes no sense
  EXPECT_THROW(static_cast<void>(check_benchmarks(good, good, bad)),
               std::invalid_argument);
}

TEST(BenchCheck, MissingMetricFieldThrows) {
  const std::string base = report({{"BM_A", 100.0}});
  BenchCheckOptions opts;
  opts.metric = "wall_time";  // not present in the report
  EXPECT_THROW(static_cast<void>(check_benchmarks(base, base, opts)),
               std::invalid_argument);
}

}  // namespace
