#include "sim/policy.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace {

using namespace rlb::sim;

/// Test double exposing fixed queue lengths / workloads.
class FakeCluster final : public ClusterState {
 public:
  FakeCluster(std::vector<int> lens, std::vector<double> work = {})
      : lens_(std::move(lens)), work_(std::move(work)) {
    if (work_.empty()) work_.assign(lens_.size(), 0.0);
  }
  int servers() const override { return static_cast<int>(lens_.size()); }
  int queue_length(int s) const override { return lens_[s]; }
  double remaining_work(int s) const override { return work_[s]; }

 private:
  std::vector<int> lens_;
  std::vector<double> work_;
};

TEST(SqdPolicy, AlwaysPicksShortestOfPolledWithFullPoll) {
  // d = N degenerates to JSQ.
  FakeCluster cluster({5, 2, 7, 1});
  SqdPolicy policy(4, 4);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, rng), 3);
}

TEST(SqdPolicy, SingleChoiceIsUniform) {
  FakeCluster cluster({5, 2, 7, 1});
  SqdPolicy policy(4, 1);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 4.0, 500);
}

TEST(SqdPolicy, NeverPicksLongerOfTwoPolled) {
  // With d = 2 over 2 servers, the longer queue must never win.
  FakeCluster cluster({3, 0});
  SqdPolicy policy(2, 2);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(SqdPolicy, TieBreakingUniform) {
  FakeCluster cluster({2, 2, 2});
  SqdPolicy policy(3, 3);
  Rng rng(5);
  std::vector<int> counts(3, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 3.0, 600);
}

TEST(JsqPolicy, PicksGlobalMinimum) {
  FakeCluster cluster({4, 1, 3, 1, 5});
  JsqPolicy policy;
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[policy.select(cluster, rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[4], 0);
  EXPECT_NEAR(counts[1], 10000, 400);  // uniform over the two minima
  EXPECT_NEAR(counts[3], 10000, 400);
}

TEST(RoundRobinPolicy, CyclesAndResets) {
  FakeCluster cluster({0, 0, 0});
  RoundRobinPolicy policy;
  Rng rng(11);
  EXPECT_EQ(policy.select(cluster, rng), 0);
  EXPECT_EQ(policy.select(cluster, rng), 1);
  EXPECT_EQ(policy.select(cluster, rng), 2);
  EXPECT_EQ(policy.select(cluster, rng), 0);
  policy.reset();
  EXPECT_EQ(policy.select(cluster, rng), 0);
}

TEST(LeastWorkLeftPolicy, PicksSmallestWorkload) {
  FakeCluster cluster({9, 9, 9}, {4.0, 0.5, 2.0});
  LeastWorkLeftPolicy policy;
  Rng rng(13);
  EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(PolicyNames, Informative) {
  EXPECT_EQ(SqdPolicy(4, 2).name(), "sq(2)");
  EXPECT_EQ(JsqPolicy().name(), "jsq");
  EXPECT_EQ(HistogramJsqPolicy().name(), "jsq-h");
  EXPECT_EQ(RoundRobinPolicy().name(), "round-robin");
  EXPECT_EQ(LeastWorkLeftPolicy().name(), "least-work");
  EXPECT_EQ(JiqPolicy(4).name(), "jiq/sq(1)");
  EXPECT_EQ(JbtPolicy(4, 2, 3).name(), "jbt(2,t=3,shortest)");
  EXPECT_EQ(JbtPolicy(4, 2, 0, JbtPolicy::Fallback::Random).name(),
            "jbt(2,t=0,random)");
}

TEST(SqdPolicy, RejectsNonPositiveD) {
  EXPECT_THROW(SqdPolicy(3, 0), std::invalid_argument);
  EXPECT_THROW(SqdPolicy(3, -1), std::invalid_argument);
}

TEST(SqdPolicy, DBeyondThePoolClampsToAFullPoll) {
  // d > N used to abort mid-run; rack-local pools made "poll everyone"
  // the required degenerate behavior. d = 10 over 3 servers is JSQ.
  FakeCluster cluster({4, 1, 2});
  SqdPolicy policy(3, 10);
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, rng), 1);
  EXPECT_EQ(policy.name(), "sq(10)");  // name keeps the requested d
}

TEST(ClusterStateView, DefaultIdleScanUsesIndexOrder) {
  FakeCluster cluster({2, 0, 1, 0, 0});
  EXPECT_EQ(cluster.idle_servers(), 3);
  EXPECT_EQ(cluster.idle_server(0), 1);
  EXPECT_EQ(cluster.idle_server(1), 3);
  EXPECT_EQ(cluster.idle_server(2), 4);
  EXPECT_THROW(static_cast<void>(cluster.idle_server(3)),
               std::invalid_argument);
}

TEST(JiqPolicy, AlwaysJoinsAnIdleServerWhenOneExists) {
  // The head of the idle view is server 2 (index-order default scan).
  FakeCluster cluster({3, 1, 0, 2});
  JiqPolicy policy(4);
  Rng rng(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, rng), 2);
}

TEST(JiqPolicy, MatchesJsqWhenAnIdleServerExists) {
  // JSQ's global minimum is the unique empty queue; JIQ must agree on
  // every state that has exactly one idle server.
  JiqPolicy jiq(4);
  JsqPolicy jsq;
  Rng rng(19);
  for (int idle = 0; idle < 4; ++idle) {
    std::vector<int> lens{2, 3, 1, 4};
    lens[idle] = 0;
    FakeCluster cluster(lens);
    EXPECT_EQ(jiq.select(cluster, rng), idle);
    EXPECT_EQ(jsq.select(cluster, rng), idle);
  }
}

TEST(JiqPolicy, FallsBackToRandomWhenNoneIdle) {
  FakeCluster cluster({1, 2, 1, 3});
  JiqPolicy policy(4);  // fallback sq(1) = uniform random
  Rng rng(23);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 4.0, 500);
}

TEST(JiqPolicy, FallbackCanPollLikeSqd) {
  // fallback_d = 2 over two busy servers must always pick the shorter.
  FakeCluster cluster({5, 1});
  JiqPolicy policy(2, 2);
  Rng rng(29);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(JbtPolicy, JoinsOnlyBelowThresholdServers) {
  // With a full poll, only the servers strictly below t = 2 qualify.
  FakeCluster cluster({5, 1, 3, 0});
  JbtPolicy policy(4, 4, 2);
  Rng rng(31);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  // Candidates are indistinguishable below the threshold: uniform split.
  EXPECT_NEAR(counts[1], trials / 2.0, 600);
  EXPECT_NEAR(counts[3], trials / 2.0, 600);
}

TEST(JbtPolicy, ZeroThresholdWithRandomFallbackIsRandomD) {
  // t = 0 never admits a candidate, so the random fallback makes the
  // policy uniform random routing — the degenerate case.
  FakeCluster cluster({4, 1, 7, 2});
  JbtPolicy policy(4, 2, 0, JbtPolicy::Fallback::Random);
  Rng rng(37);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 4.0, 500);
}

TEST(JbtPolicy, ZeroThresholdWithShortestFallbackIsSqd) {
  // t = 0 with the shortest-polled fallback degenerates to SQ(d): over
  // two servers with d = 2 the longer queue must never win.
  FakeCluster cluster({3, 0});
  JbtPolicy policy(2, 2, 0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(JbtPolicy, ValidatesParameters) {
  EXPECT_THROW(JbtPolicy(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(JbtPolicy(3, 2, -1), std::invalid_argument);
  // d > N clamps to a full poll instead of throwing (same contract as
  // SqdPolicy); with everything below threshold that is uniform routing.
  JbtPolicy policy(2, 5, 10);
  FakeCluster cluster({1, 1});
  Rng rng(53);
  std::vector<int> counts(2, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  EXPECT_NEAR(counts[0], trials / 2.0, 400);
  EXPECT_NEAR(counts[1], trials / 2.0, 400);
}

/// Test double for the compressed-state view: levels given directly;
/// idle FIFO and within-level sampling use server-index order.
class FakeHistogramView final : public QueueHistogramView {
 public:
  explicit FakeHistogramView(std::vector<int> levels)
      : levels_(std::move(levels)) {}
  int servers() const override { return static_cast<int>(levels_.size()); }
  int max_level() const override {
    int m = 0;
    for (int l : levels_) m = std::max(m, l);
    return m;
  }
  int count_at(int level) const override {
    int c = 0;
    for (int l : levels_)
      if (l == level) ++c;
    return c;
  }
  int idle_count() const override { return count_at(0); }
  int idle_head() const override {
    for (int s = 0; s < servers(); ++s)
      if (levels_[s] == 0) return s;
    return -1;
  }
  int level_of(int server) const override { return levels_[server]; }
  int sample_at_level(int level, Rng& rng) const override {
    auto j = rng.uniform_int(static_cast<std::uint64_t>(count_at(level)));
    for (int s = 0; s < servers(); ++s) {
      if (levels_[s] != level) continue;
      if (j == 0) return s;
      --j;
    }
    return -1;
  }

 private:
  std::vector<int> levels_;
};

TEST(SymmetricDispatch, CapabilityFlagsMatchTheEngineContract) {
  EXPECT_TRUE(SqdPolicy(4, 2).symmetric());
  EXPECT_TRUE(JsqPolicy().symmetric());
  EXPECT_TRUE(HistogramJsqPolicy().symmetric());
  EXPECT_TRUE(JiqPolicy(4).symmetric());
  EXPECT_TRUE(JbtPolicy(4, 2, 3).symmetric());
  EXPECT_FALSE(RoundRobinPolicy().symmetric());
  EXPECT_FALSE(LeastWorkLeftPolicy().symmetric());
}

TEST(SymmetricDispatch, DefaultSelectSymmetricRefusesToRun) {
  RoundRobinPolicy policy;
  FakeHistogramView view({0, 0});
  Rng rng(1);
  EXPECT_THROW((void)policy.select_symmetric(view, rng), std::logic_error);
}

TEST(SymmetricDispatch, MatchesSelectDrawForDrawOnTheSameState) {
  // The bit-identity contract at policy level: on equal cluster states,
  // select and select_symmetric walk the same random stream to the same
  // server, for every symmetric policy. (jsq-h is exempt by design: same
  // draw count and distribution, different server mapping.)
  const std::vector<int> lens{2, 0, 1, 2, 0, 3};
  FakeCluster cluster(lens);
  FakeHistogramView view(lens);
  SqdPolicy sqd(6, 3);
  JsqPolicy jsq;
  JiqPolicy jiq(6);
  JbtPolicy jbt(6, 3, 2);
  JbtPolicy jbt_r(6, 3, 2, JbtPolicy::Fallback::Random);
  for (Policy* p :
       {static_cast<Policy*>(&sqd), static_cast<Policy*>(&jsq),
        static_cast<Policy*>(&jiq), static_cast<Policy*>(&jbt),
        static_cast<Policy*>(&jbt_r)}) {
    Rng rng_a(57), rng_b(57);
    for (int i = 0; i < 300; ++i) {
      EXPECT_EQ(p->select(cluster, rng_a), p->select_symmetric(view, rng_b))
          << p->name() << " draw " << i;
    }
    // Streams must stay in lockstep after the selections too.
    EXPECT_EQ(rng_a.uniform_int(1u << 30), rng_b.uniform_int(1u << 30))
        << p->name();
  }
}

TEST(SymmetricDispatch, JiqFallsBackThroughTheViewWhenNoneIdle) {
  FakeHistogramView view({1, 2, 1, 3});
  JiqPolicy policy(4);  // sq(1) fallback = uniform random
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    ++counts[policy.select_symmetric(view, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 4.0, 500);
}

TEST(HistogramJsqPolicy, UniformAmongMinimaOnBothPaths) {
  const std::vector<int> lens{4, 1, 3, 1, 5};
  FakeCluster cluster(lens);
  FakeHistogramView view(lens);
  HistogramJsqPolicy policy;
  Rng rng(67);
  std::vector<int> scan_counts(5, 0), view_counts(5, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    ++scan_counts[policy.select(cluster, rng)];
    ++view_counts[policy.select_symmetric(view, rng)];
  }
  for (const auto& counts : {scan_counts, view_counts}) {
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[2], 0);
    EXPECT_EQ(counts[4], 0);
    EXPECT_NEAR(counts[1], trials / 2.0, 450);
    EXPECT_NEAR(counts[3], trials / 2.0, 450);
  }
}

TEST(ClusterStateView, RackIdleHeadScansTheSlice) {
  FakeCluster cluster({2, 0, 1, 0, 0, 1});
  EXPECT_EQ(cluster.rack_idle_head(0, 3), 1);
  EXPECT_EQ(cluster.rack_idle_head(3, 6), 3);
  FakeCluster busy({1, 1, 1, 0});
  EXPECT_EQ(busy.rack_idle_head(0, 3), -1);
  EXPECT_EQ(busy.rack_idle_head(3, 4), 3);
}

TEST(RackLocalSqdPolicy, StaysLocalWhenTheHomeRackHasRoom) {
  // 2 racks x 2 servers; the home rack has an idle server, so the
  // dispatch must never leave it even though rack 1 is entirely idle.
  FakeCluster cluster({0, 1, 0, 0});
  RackLocalSqdPolicy policy(4, 2, 2);
  Rng rng(71);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, 0, rng), 0);
}

TEST(RackLocalSqdPolicy, SpillsOnlyForAStrictImprovement) {
  RackLocalSqdPolicy policy(4, 2, 2);
  Rng rng(73);
  // Saturated at home, but the remote rack is no better: a tie stays
  // local (never pay the penalty for nothing).
  FakeCluster tie({1, 1, 1, 1});
  for (int i = 0; i < 100; ++i) {
    const int s = policy.select(tie, 0, rng);
    EXPECT_TRUE(s == 0 || s == 1) << s;
  }
  // Strictly shorter remote queue: the spill takes it.
  FakeCluster better({2, 2, 0, 1});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(policy.select(better, 0, rng), 2);
}

TEST(RackLocalSqdPolicy, NoSpillVariantStaysLocalUnderPressure) {
  // spill_threshold = 0: pure rack-local, even with idle remote servers.
  FakeCluster cluster({5, 6, 0, 0});
  RackLocalSqdPolicy policy(4, 2, 2, 0);
  Rng rng(79);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, 0, rng), 0);
}

TEST(RackLocalSqdPolicy, ClampsDToBothPoolSizes) {
  // d = 10 over 2-server racks: a full local poll, and on spill a full
  // remote poll — the d > pool edge the clamped sampler guard covers.
  FakeCluster cluster({4, 4, 3, 1});
  RackLocalSqdPolicy policy(4, 2, 10);
  Rng rng(83);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, 0, rng), 3);
}

TEST(RackJiqPolicy, DispatchesToTheHomeRacksIdleHead) {
  FakeCluster cluster({1, 0, 0, 0});
  RackJiqPolicy policy(4, 2);
  Rng rng(89);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, 0, rng), 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, 1, rng), 2);
}

TEST(RackJiqPolicy, StealsTheGlobalIdleHeadWhenHomeRackIsBusy) {
  // Home rack 0 fully busy: the steal takes the longest-idle server
  // anywhere (index order under the default scan), not an arbitrary one.
  FakeCluster cluster({2, 1, 0, 0});
  RackJiqPolicy policy(4, 2);
  Rng rng(97);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, 0, rng), 2);
}

TEST(RackJiqPolicy, FallsBackToRackLocalPollingWhenNoneIdle) {
  // Nothing idle anywhere: rack-local sq(1) polls the home rack, and the
  // much deeper remote queues never win the strict-improvement spill.
  FakeCluster cluster({1, 1, 9, 9});
  RackJiqPolicy policy(4, 2);
  Rng rng(101);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, 0, rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(counts[0], trials / 2.0, 500);
  EXPECT_NEAR(counts[1], trials / 2.0, 500);
}

TEST(RackPolicies, CapabilitiesAndNames) {
  RackLocalSqdPolicy rsqd(8, 2, 2);
  RackJiqPolicy rjiq(8, 2);
  EXPECT_TRUE(rsqd.symmetric());
  EXPECT_TRUE(rjiq.symmetric());
  EXPECT_TRUE(rsqd.locality_aware());
  EXPECT_TRUE(rjiq.locality_aware());
  EXPECT_FALSE(rjiq.dispatches_to_idle_head());  // home head != global head
  EXPECT_EQ(rsqd.required_racks(), 2);
  EXPECT_EQ(rjiq.required_racks(), 2);
  EXPECT_FALSE(SqdPolicy(8, 2).locality_aware());
  EXPECT_EQ(SqdPolicy(8, 2).required_racks(), 0);
  EXPECT_EQ(rsqd.name(), "rack-sq(2)");
  EXPECT_EQ(RackLocalSqdPolicy(8, 2, 2, 0).name(), "rack-sq(2)/local");
  EXPECT_EQ(RackLocalSqdPolicy(8, 2, 2, 3).name(), "rack-sq(2)/spill=3");
  EXPECT_EQ(rjiq.name(), "rack-jiq/rack-sq(1)");
  EXPECT_THROW(RackLocalSqdPolicy(7, 2, 2), std::invalid_argument);
  EXPECT_THROW(RackLocalSqdPolicy(8, 0, 2), std::invalid_argument);
  EXPECT_THROW(RackLocalSqdPolicy(8, 2, 0), std::invalid_argument);
}

TEST(RackDispatch, MatchesSelectDrawForDrawOnTheSameState) {
  // The bit-identity contract extends to the rack-aware overloads: on
  // equal states (and the same home rack) the legacy and symmetric paths
  // walk the same random stream to the same server. The fakes agree on
  // idle order (index order), as the real engines do (I-queue FIFO).
  const std::vector<int> lens{2, 0, 1, 2, 0, 3};
  FakeCluster cluster(lens);
  FakeHistogramView view(lens);
  RackLocalSqdPolicy rsqd(6, 2, 2);
  RackLocalSqdPolicy rlocal(6, 2, 2, 0);
  RackJiqPolicy rjiq(6, 2);
  for (Policy* p :
       {static_cast<Policy*>(&rsqd), static_cast<Policy*>(&rlocal),
        static_cast<Policy*>(&rjiq)}) {
    Rng rng_a(107), rng_b(107);
    for (int i = 0; i < 300; ++i) {
      const int home = i % 2;
      EXPECT_EQ(p->select(cluster, home, rng_a),
                p->select_symmetric(view, home, rng_b))
          << p->name() << " draw " << i;
    }
    EXPECT_EQ(rng_a.uniform_int(1u << 30), rng_b.uniform_int(1u << 30))
        << p->name();
  }
}

TEST(NewPolicies, ClonesAreIndependent) {
  JiqPolicy jiq(4);
  JbtPolicy jbt(4, 2, 3);
  const auto jiq_clone = jiq.clone();
  const auto jbt_clone = jbt.clone();
  EXPECT_EQ(jiq_clone->name(), jiq.name());
  EXPECT_EQ(jbt_clone->name(), jbt.name());
  // Same seed, same state view: clone and original walk identical streams.
  FakeCluster cluster({1, 2, 3, 4});
  Rng rng1(43), rng2(43);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(jbt.select(cluster, rng1), jbt_clone->select(cluster, rng2));
}

}  // namespace
