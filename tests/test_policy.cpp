#include "sim/policy.h"

#include <vector>

#include <gtest/gtest.h>

namespace {

using namespace rlb::sim;

/// Test double exposing fixed queue lengths / workloads.
class FakeCluster final : public ClusterState {
 public:
  FakeCluster(std::vector<int> lens, std::vector<double> work = {})
      : lens_(std::move(lens)), work_(std::move(work)) {
    if (work_.empty()) work_.assign(lens_.size(), 0.0);
  }
  int servers() const override { return static_cast<int>(lens_.size()); }
  int queue_length(int s) const override { return lens_[s]; }
  double remaining_work(int s) const override { return work_[s]; }

 private:
  std::vector<int> lens_;
  std::vector<double> work_;
};

TEST(SqdPolicy, AlwaysPicksShortestOfPolledWithFullPoll) {
  // d = N degenerates to JSQ.
  FakeCluster cluster({5, 2, 7, 1});
  SqdPolicy policy(4, 4);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(policy.select(cluster, rng), 3);
}

TEST(SqdPolicy, SingleChoiceIsUniform) {
  FakeCluster cluster({5, 2, 7, 1});
  SqdPolicy policy(4, 1);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 4.0, 500);
}

TEST(SqdPolicy, NeverPicksLongerOfTwoPolled) {
  // With d = 2 over 2 servers, the longer queue must never win.
  FakeCluster cluster({3, 0});
  SqdPolicy policy(2, 2);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(SqdPolicy, TieBreakingUniform) {
  FakeCluster cluster({2, 2, 2});
  SqdPolicy policy(3, 3);
  Rng rng(5);
  std::vector<int> counts(3, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[policy.select(cluster, rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 3.0, 600);
}

TEST(JsqPolicy, PicksGlobalMinimum) {
  FakeCluster cluster({4, 1, 3, 1, 5});
  JsqPolicy policy;
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[policy.select(cluster, rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[4], 0);
  EXPECT_NEAR(counts[1], 10000, 400);  // uniform over the two minima
  EXPECT_NEAR(counts[3], 10000, 400);
}

TEST(RoundRobinPolicy, CyclesAndResets) {
  FakeCluster cluster({0, 0, 0});
  RoundRobinPolicy policy;
  Rng rng(11);
  EXPECT_EQ(policy.select(cluster, rng), 0);
  EXPECT_EQ(policy.select(cluster, rng), 1);
  EXPECT_EQ(policy.select(cluster, rng), 2);
  EXPECT_EQ(policy.select(cluster, rng), 0);
  policy.reset();
  EXPECT_EQ(policy.select(cluster, rng), 0);
}

TEST(LeastWorkLeftPolicy, PicksSmallestWorkload) {
  FakeCluster cluster({9, 9, 9}, {4.0, 0.5, 2.0});
  LeastWorkLeftPolicy policy;
  Rng rng(13);
  EXPECT_EQ(policy.select(cluster, rng), 1);
}

TEST(PolicyNames, Informative) {
  EXPECT_EQ(SqdPolicy(4, 2).name(), "sq(2)");
  EXPECT_EQ(JsqPolicy().name(), "jsq");
  EXPECT_EQ(RoundRobinPolicy().name(), "round-robin");
  EXPECT_EQ(LeastWorkLeftPolicy().name(), "least-work");
}

TEST(SqdPolicy, RejectsBadD) {
  EXPECT_THROW(SqdPolicy(3, 0), std::invalid_argument);
  EXPECT_THROW(SqdPolicy(3, 4), std::invalid_argument);
}

}  // namespace
