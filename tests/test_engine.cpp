#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/result_cache.h"
#include "engine/scenario.h"
#include "engine/sink.h"
#include "engine/sweep.h"
#include "sim/fast_sqd.h"
#include "sim/rng.h"
#include "util/cli.h"

namespace {

using rlb::engine::cell_seed;
using rlb::engine::parallel_map;
using rlb::engine::Scenario;
using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::engine::ScenarioRegistry;
using rlb::engine::SweepGrid;
using rlb::engine::UnknownScenarioError;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Scenario make_scenario(const std::string& name) {
  return Scenario{name,
                  "test scenario " + name,
                  {{"n", "servers", "4"}},
                  [](ScenarioContext&) { return ScenarioOutput{}; }};
}

TEST(ScenarioRegistry, LookupFindsRegisteredScenario) {
  ScenarioRegistry registry;
  registry.add(make_scenario("alpha"));
  registry.add(make_scenario("beta"));
  EXPECT_TRUE(registry.contains("alpha"));
  EXPECT_EQ(registry.get("alpha").description, "test scenario alpha");
  EXPECT_EQ(registry.size(), 2u);

  const auto list = registry.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name, "alpha");  // sorted by name
  EXPECT_EQ(list[1]->name, "beta");
}

TEST(ScenarioRegistry, UnknownScenarioThrowsWithKnownNames) {
  ScenarioRegistry registry;
  registry.add(make_scenario("alpha"));
  EXPECT_FALSE(registry.contains("nope"));
  try {
    registry.get("nope");
    FAIL() << "expected UnknownScenarioError";
  } catch (const UnknownScenarioError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope"), std::string::npos);
    EXPECT_NE(message.find("alpha"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicatesAndInvalidScenarios) {
  ScenarioRegistry registry;
  registry.add(make_scenario("alpha"));
  EXPECT_THROW(registry.add(make_scenario("alpha")), std::invalid_argument);
  EXPECT_THROW(registry.add(make_scenario("")), std::invalid_argument);
  Scenario no_run = make_scenario("gamma");
  no_run.run = nullptr;
  EXPECT_THROW(registry.add(std::move(no_run)), std::invalid_argument);
}

TEST(ScenarioRegistry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&ScenarioRegistry::global(), &ScenarioRegistry::global());
}

TEST(MarkdownCatalog, RendersSectionsAndParamTables) {
  ScenarioRegistry registry;
  registry.add(make_scenario("alpha"));
  Scenario no_params = make_scenario("beta");
  no_params.params.clear();
  registry.add(std::move(no_params));

  const std::string md = rlb::engine::markdown_catalog(registry.list());
  EXPECT_NE(md.find("# Scenario catalog"), std::string::npos);
  EXPECT_NE(md.find("## `alpha`"), std::string::npos);
  EXPECT_NE(md.find("| `--n` | `4` | servers |"), std::string::npos);
  EXPECT_NE(md.find("## `beta`"), std::string::npos);
  EXPECT_NE(md.find("No parameters."), std::string::npos);
  // Sections are emitted in sorted order.
  EXPECT_LT(md.find("## `alpha`"), md.find("## `beta`"));
}

TEST(MarkdownCatalog, EscapesTableBreakingCharacters) {
  ScenarioRegistry registry;
  Scenario tricky = make_scenario("tricky");
  tricky.description = "a|b\nc";
  tricky.params = {{"x", "pipe|char", "1"}};
  registry.add(std::move(tricky));
  const std::string md = rlb::engine::markdown_catalog(registry.list());
  EXPECT_NE(md.find("a\\|b c"), std::string::npos);
  EXPECT_NE(md.find("pipe\\|char"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deterministic parallel sweep
// ---------------------------------------------------------------------------

TEST(Sweep, CellSeedIsDeterministicAndDecorrelated) {
  EXPECT_EQ(cell_seed(7, 3), cell_seed(7, 3));
  EXPECT_NE(cell_seed(7, 3), cell_seed(7, 4));
  EXPECT_NE(cell_seed(7, 3), cell_seed(8, 3));
  EXPECT_NE(cell_seed(0, 0), 0u);
}

TEST(Sweep, ParallelMapPreservesIndexOrder) {
  const auto fn = [](std::size_t i) { return static_cast<int>(i * i); };
  const auto serial = parallel_map<int>(100, 1, fn);
  const auto parallel = parallel_map<int>(100, 4, fn);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial[9], 81);
}

TEST(Sweep, FourThreadSweepEqualsOneThreadCellForCell) {
  // The acceptance property behind `rlb_run --threads=N`: a grid of real
  // stochastic simulations, seeded per cell, is bit-identical regardless
  // of the thread count.
  const SweepGrid grid({0.5, 0.8, 0.9}, {1, 2}, {2, 4}, /*base_seed=*/99,
                       /*replicas=*/2);
  ASSERT_EQ(grid.size(), 24u);
  const auto run_cell = [&](std::size_t i) {
    const auto pt = grid.point(i);
    rlb::sim::FastSqdConfig cfg;
    cfg.params = {pt.n, pt.d, pt.rho, 1.0};
    cfg.jobs = 20'000;
    cfg.warmup = 2'000;
    cfg.seed = pt.seed;
    return rlb::sim::simulate_sqd_fast(cfg).mean_delay;
  };
  const auto one = parallel_map<double>(grid.size(), 1, run_cell);
  const auto four = parallel_map<double>(grid.size(), 4, run_cell);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "cell " << i << " diverged";
    EXPECT_GT(one[i], 0.0);
  }
}

TEST(Sweep, GridEnumeratesAllCellsWithDistinctSeeds) {
  const SweepGrid grid({0.5, 0.9}, {2}, {4, 8}, 1, 3);
  ASSERT_EQ(grid.size(), 12u);
  std::vector<std::uint64_t> seeds;
  int n4 = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto pt = grid.point(i);
    EXPECT_EQ(pt.index, i);
    EXPECT_EQ(pt.d, 2);
    if (pt.n == 4) ++n4;
    seeds.push_back(pt.seed);
  }
  EXPECT_EQ(n4, 6);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "per-cell seeds must be pairwise distinct";
  EXPECT_THROW(grid.point(12), std::exception);
}

TEST(Sweep, ParallelMapPropagatesExceptions) {
  const auto fn = [](std::size_t i) -> int {
    if (i == 17) throw std::runtime_error("cell 17 exploded");
    return static_cast<int>(i);
  };
  EXPECT_THROW(parallel_map<int>(32, 4, fn), std::runtime_error);
  EXPECT_THROW(parallel_map<int>(32, 1, fn), std::runtime_error);
}

TEST(Sweep, ContextMapUsesConfiguredThreads) {
  char prog[] = "test";
  char* argv[] = {prog};
  const rlb::util::Cli cli(1, argv);
  ScenarioContext ctx(cli, 4);
  EXPECT_EQ(ctx.threads(), 4);
  const auto values = ctx.map<std::uint64_t>(10, [](std::size_t i) {
    rlb::sim::Rng rng(cell_seed(5, i));
    return rng.next_u64();
  });
  ScenarioContext serial(cli, 1);
  const auto expected = serial.map<std::uint64_t>(10, [](std::size_t i) {
    rlb::sim::Rng rng(cell_seed(5, i));
    return rng.next_u64();
  });
  EXPECT_EQ(values, expected);
}

TEST(Sweep, ContextCarriesReplicaCountAndBudget) {
  char prog[] = "test";
  char* argv[] = {prog};
  const rlb::util::Cli cli(1, argv);
  ScenarioContext ctx(cli, 4, 8);
  EXPECT_EQ(ctx.replicas(), 8);
  EXPECT_EQ(ctx.budget().total(), 4);
  ScenarioContext defaulted(cli, 2);
  EXPECT_EQ(defaulted.replicas(), 1);
}

// ---------------------------------------------------------------------------
// AdaptiveSpec / adaptive_plan (--target-ci family)
// ---------------------------------------------------------------------------

rlb::util::Cli make_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  static std::vector<std::string> keep_alive;  // Cli stores string copies
  keep_alive = std::move(args);
  for (auto& a : keep_alive) argv.push_back(a.data());
  return rlb::util::Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(AdaptiveSpec, DisabledByDefaultAndParsesTheFlagFamily) {
  const auto off = make_cli({});
  EXPECT_FALSE(rlb::engine::AdaptiveSpec::parse(off).enabled());

  const auto on = make_cli({"--target-ci=0.01", "--confidence=0.99",
                            "--initial-jobs=500", "--max-jobs=9000",
                            "--growth-factor=3",
                            "--warmup-policy=fraction",
                            "--warmup-fraction=0.2"});
  const auto spec = rlb::engine::AdaptiveSpec::parse(on);
  EXPECT_TRUE(spec.enabled());
  EXPECT_DOUBLE_EQ(spec.target_ci, 0.01);
  EXPECT_DOUBLE_EQ(spec.confidence, 0.99);
  EXPECT_EQ(spec.initial_jobs, 500u);
  EXPECT_EQ(spec.max_jobs, 9000u);
  EXPECT_DOUBLE_EQ(spec.growth_factor, 3.0);
  EXPECT_EQ(spec.warmup_policy, rlb::sim::WarmupPolicy::kFraction);
  EXPECT_DOUBLE_EQ(spec.warmup_fraction, 0.2);
}

TEST(AdaptiveSpec, RejectsMalformedValues) {
  // Negative counts must fail loudly instead of wrapping through the
  // uint64 cast into near-infinite budgets.
  for (const char* bad : {"--target-ci=-0.5", "--initial-jobs=-1",
                          "--max-jobs=-1", "--warmup-jobs=-1",
                          "--warmup-policy=banana"}) {
    const auto cli = make_cli({bad});
    EXPECT_THROW(rlb::engine::AdaptiveSpec::parse(cli),
                 std::invalid_argument)
        << bad;
  }
}

TEST(AdaptiveSpec, AdaptivePlanDerivesDocumentedDefaults) {
  const auto cli = make_cli({"--target-ci=0.05"});
  ScenarioContext ctx(cli, 1, 4);
  const auto plan = ctx.adaptive_plan(123, 80'000);
  EXPECT_EQ(plan.replicas, 4);
  EXPECT_EQ(plan.base_seed, 123u);
  EXPECT_DOUBLE_EQ(plan.target_ci, 0.05);
  EXPECT_EQ(plan.initial_jobs, 10'000u);  // fixed budget / 8
  EXPECT_EQ(plan.max_jobs, 320'000u);     // 32 x initial
  EXPECT_EQ(plan.warmup_jobs, 250u);      // initial / (10 * replicas)
  plan.validate();

  // The documented floor: tiny fixed budgets with many replicas still
  // give every replica a measurable round-0 shard.
  ScenarioContext wide(cli, 1, 30);
  const auto floored = wide.adaptive_plan(1, 1'000);
  EXPECT_EQ(floored.initial_jobs, 900u);  // 30 jobs x 30 replicas
  floored.validate();

  // An explicit --warmup-jobs=0 is a real "no warmup" request, not the
  // unset sentinel: it must survive instead of becoming the 10% default.
  const auto zero_warmup = make_cli({"--target-ci=0.05",
                                     "--warmup-jobs=0"});
  ScenarioContext zero_ctx(zero_warmup, 1, 4);
  EXPECT_EQ(zero_ctx.adaptive_plan(1, 80'000).warmup_jobs, 0u);
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

ScenarioOutput small_grid_output() {
  ScenarioOutput out;
  out.preamble = "small grid";
  auto& table = out.add_table("grid", {"rho", "n", "delay", "status"});
  table.add_row({"0.50", "2", "1.25", "ok"});
  table.add_row({"0.90", "4", "3.5", "unstable"});
  out.note("note under grid");
  return out;
}

// ---------------------------------------------------------------------------
// Cache CLI coherence (the rlb_run guard for --refine / --cache-mode)
// ---------------------------------------------------------------------------

TEST(CacheCliError, FlagsWithoutCacheAreRejectedWithSpecificMessages) {
  using rlb::engine::cache_cli_error;
  // Each incoherent combination names the missing --cache=DIR and the
  // flag(s) that need it, so the error is actionable.
  const std::string refine_only = cache_cli_error(false, true, false);
  EXPECT_NE(refine_only.find("--refine"), std::string::npos);
  EXPECT_NE(refine_only.find("--cache=DIR"), std::string::npos);
  EXPECT_EQ(refine_only.find("--cache-mode"), std::string::npos);

  const std::string mode_only = cache_cli_error(false, false, true);
  EXPECT_NE(mode_only.find("--cache-mode"), std::string::npos);
  EXPECT_NE(mode_only.find("--cache=DIR"), std::string::npos);

  const std::string both = cache_cli_error(false, true, true);
  EXPECT_NE(both.find("--refine"), std::string::npos);
  EXPECT_NE(both.find("--cache-mode"), std::string::npos);
  EXPECT_NE(both.find("--cache=DIR"), std::string::npos);
}

TEST(CacheCliError, CoherentCombinationsPass) {
  using rlb::engine::cache_cli_error;
  // No cache flags at all, or --cache present with any companion set.
  EXPECT_TRUE(cache_cli_error(false, false, false).empty());
  EXPECT_TRUE(cache_cli_error(true, false, false).empty());
  EXPECT_TRUE(cache_cli_error(true, true, false).empty());
  EXPECT_TRUE(cache_cli_error(true, false, true).empty());
  EXPECT_TRUE(cache_cli_error(true, true, true).empty());
}

std::vector<std::vector<std::string>> parse_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

TEST(Sink, CsvRoundTripsASmallGrid) {
  const ScenarioOutput out = small_grid_output();
  const std::string path = ::testing::TempDir() + "/rlb_sink_roundtrip.csv";
  const auto written = rlb::engine::write_csv(out, path);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], path);

  const auto rows = parse_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"rho", "n", "delay",
                                               "status"}));
  EXPECT_EQ(rows[1],
            (std::vector<std::string>{"0.50", "2", "1.25", "ok"}));
  EXPECT_EQ(rows[2],
            (std::vector<std::string>{"0.90", "4", "3.5", "unstable"}));
  std::remove(path.c_str());
}

TEST(Sink, MultiTableCsvSplitsPerTable) {
  ScenarioOutput out = small_grid_output();
  auto& second = out.add_table("extra", {"a"});
  second.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/rlb_multi.csv";
  const auto written = rlb::engine::write_csv(out, path);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(written[0], ::testing::TempDir() + "/rlb_multi.grid.csv");
  EXPECT_EQ(written[1], ::testing::TempDir() + "/rlb_multi.extra.csv");
  for (const auto& p : written) {
    EXPECT_FALSE(parse_csv(p).empty());
    std::remove(p.c_str());
  }
}

TEST(Sink, JsonRoundTripsASmallGrid) {
  const ScenarioOutput out = small_grid_output();
  const std::string json = rlb::engine::to_json(out, "toy");
  // Numbers stay numbers, non-numeric cells are quoted strings.
  EXPECT_EQ(json,
            "{\"scenario\":\"toy\",\"tables\":[{\"name\":\"grid\","
            "\"header\":[\"rho\",\"n\",\"delay\",\"status\"],"
            "\"rows\":[[0.50,2,1.25,\"ok\"],[0.90,4,3.5,\"unstable\"]]}]}");

  const std::string path = ::testing::TempDir() + "/rlb_sink.json";
  rlb::engine::write_json(out, "toy", path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json + "\n");
  std::remove(path.c_str());
}

TEST(Sink, JsonEscapesStringsAndRejectsNonJsonNumbers) {
  ScenarioOutput out;
  auto& table = out.add_table("t", {"weird \"col\""});
  table.add_row({"line\nbreak"});
  table.add_row({"007"});    // leading zeros: not a JSON number
  table.add_row({"0x1f"});   // hex: not a JSON number
  table.add_row({"-1.5e3"});  // valid JSON number
  const std::string json = rlb::engine::to_json(out, "esc");
  EXPECT_NE(json.find("\"weird \\\"col\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"line\\nbreak\""), std::string::npos);
  EXPECT_NE(json.find("\"007\""), std::string::npos);
  EXPECT_NE(json.find("\"0x1f\""), std::string::npos);
  EXPECT_NE(json.find("-1.5e3"), std::string::npos);
  EXPECT_EQ(json.find("\"-1.5e3\""), std::string::npos);
}

TEST(Sink, JsonEscapesAllControlCharacters) {
  // Scenario descriptions may carry any byte; the JSON sink must never
  // emit an invalid document. Named escapes for the common controls,
  // \u00XX for the rest.
  ScenarioOutput out;
  auto& table = out.add_table("t", {"c"});
  std::string all_controls;
  for (char c = 1; c < 0x20; ++c) all_controls.push_back(c);
  table.add_row({all_controls});
  const std::string json = rlb::engine::to_json(out, "ctl");
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\b"), std::string::npos);
  EXPECT_NE(json.find("\\f"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  // No raw control byte may survive into the document.
  for (char c = 1; c < 0x20; ++c)
    EXPECT_EQ(json.find(c), std::string::npos)
        << "raw control byte " << static_cast<int>(c);
}

TEST(Sink, TextRenderingIncludesTablesAndNotes) {
  const ScenarioOutput out = small_grid_output();
  std::ostringstream os;
  rlb::engine::write_text(out, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("small grid"), std::string::npos);
  EXPECT_NE(s.find("unstable"), std::string::npos);
  EXPECT_NE(s.find("note under grid"), std::string::npos);
}

}  // namespace
