// The result cache's correctness bar (docs/CACHING.md): stable semantic
// keys, lossless record round-trips, corrupted/mismatched entries
// discarded, and — the load-bearing property — resume-from-round-state
// reproducing a cold adaptive run bit-for-bit under the geometric
// planner, even after the round state passes through its JSON record.
#include "engine/result_cache.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/policy.h"
#include "sim/replica.h"
#include "sim/stats.h"
#include "util/thread_budget.h"

namespace {

using rlb::engine::CacheKey;
using rlb::engine::CacheMode;
using rlb::engine::CellRecord;
using rlb::engine::encode_record;
using rlb::engine::parse_record;
using rlb::engine::ResultCache;

CacheKey sample_key() {
  CacheKey key("power_of_d");
  key.set("rho", 0.9);
  key.set("n", 10);
  key.set("seed", std::uint64_t{12345});
  return key;
}

TEST(CacheKey, StableUnderParameterReordering) {
  CacheKey a("scenario");
  a.set("alpha", 1.5);
  a.set("beta", 2);
  a.set("gamma", std::uint64_t{7});

  CacheKey b("scenario");
  b.set("gamma", std::uint64_t{7});
  b.set("alpha", 1.5);
  b.set("beta", 2);

  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(CacheKey, DistinguishesScenarioParamsAndValues) {
  CacheKey a("s1");
  a.set("x", 1);
  CacheKey b("s2");
  b.set("x", 1);
  CacheKey c("s1");
  c.set("x", 2);
  CacheKey d("s1");
  d.set("y", 1);
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_NE(a.canonical(), c.canonical());
  EXPECT_NE(a.canonical(), d.canonical());
}

TEST(CacheKey, LastSetOfANameWins) {
  CacheKey a("s");
  a.set("x", 1);
  a.set("x", 2);
  CacheKey b("s");
  b.set("x", 2);
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(CacheKey, DoubleValuesKeyExactly) {
  // %.17g: nextafter-distinct doubles must produce distinct keys.
  const double x = 0.1;
  const double y = std::nextafter(x, 1.0);
  CacheKey a("s");
  a.set("x", x);
  CacheKey b("s");
  b.set("x", y);
  EXPECT_NE(a.canonical(), b.canonical());
}

TEST(CacheKey, TopologyCoordinatesProduceDistinctKeys) {
  // rack_locality keys its cells on the full topology coordinates; every
  // knob a cell's simulation depends on must move the canonical key.
  const auto racked = [](int racks, const std::string& kind, double penalty,
                         std::uint64_t task) {
    CacheKey key("rack_locality");
    key.set("racks", racks);
    key.set("penalty_kind", kind);
    key.set("penalty", penalty);
    key.set("task", task);
    return key;
  };
  const CacheKey base = racked(4, "latency", 0.5, 1);
  EXPECT_NE(base.canonical(), racked(2, "latency", 0.5, 1).canonical());
  EXPECT_NE(base.canonical(), racked(4, "capacity", 0.5, 1).canonical());
  EXPECT_NE(base.canonical(), racked(4, "latency", 0.25, 1).canonical());
  EXPECT_NE(base.canonical(), racked(4, "latency", 0.5, 2).canonical());
  EXPECT_EQ(base.canonical(), racked(4, "latency", 0.5, 1).canonical());
}

TEST(CacheKey, DigestIs32HexChars) {
  const std::string d = sample_key().digest();
  EXPECT_EQ(d.size(), 32u);
  EXPECT_EQ(d.find_first_not_of("0123456789abcdef"), std::string::npos);
}

CellRecord sample_record(bool with_round_state) {
  CellRecord rec;
  rec.values = {1.0 / 3.0, 1e300, 5e-324,
                std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity()};
  rec.report.rounds = 3;
  rec.report.jobs_used = (std::uint64_t{1} << 60) + 12345;  // beyond 2^53
  rec.report.half_width = 0.0123456789012345678;
  rec.report.converged = true;
  rec.target_ci = 0.05;
  if (with_round_state) {
    auto& s = rec.round_state;
    s.rounds = 3;
    s.jobs_used = 4096;
    s.batch = 137;
    s.sojourn = rlb::sim::MomentsState{100, 2.5, 17.25, 0.001, 42.0};
    s.wait = rlb::sim::MomentsState{100, 1.5, 9.0, 0.0, 40.0};
    s.sojourn_ci = rlb::sim::BatchMeansState{
        137, 36, 91.75, rlb::sim::MomentsState{12, 2.51, 0.75, 2.1, 3.0}};
    s.sojourn_quantiles =
        rlb::sim::ReservoirState{8, 100, 0xdeadbeefcafeull,
                                 {1.0, 2.0, 3.0, 0.5, 7.0, 2.25, 9.0, 4.0}};
    s.area_jobs = 123.456;
    s.busy_area = 78.9;
    s.window = 1000.0;
    s.sim_time = 1234.5;
    s.sla_violations = 7;
    s.sla_threshold = 10.0;
    rec.has_round_state = true;
  }
  return rec;
}

TEST(CellRecord, RoundTripsThroughJsonExactly) {
  for (const bool with_state : {false, true}) {
    const CacheKey key = sample_key();
    const CellRecord rec = sample_record(with_state);
    const std::string text = encode_record(key, rec);
    const auto parsed = parse_record(key, text);
    ASSERT_TRUE(parsed.has_value()) << text;

    // Encode-of-parse is byte-identical: nothing is lost or reformatted.
    EXPECT_EQ(encode_record(key, *parsed), text);

    ASSERT_EQ(parsed->values.size(), rec.values.size());
    for (std::size_t i = 0; i < rec.values.size(); ++i)
      EXPECT_EQ(parsed->values[i], rec.values[i]) << i;
    EXPECT_EQ(parsed->report.rounds, rec.report.rounds);
    EXPECT_EQ(parsed->report.jobs_used, rec.report.jobs_used);
    EXPECT_EQ(parsed->report.half_width, rec.report.half_width);
    EXPECT_EQ(parsed->report.converged, rec.report.converged);
    EXPECT_EQ(parsed->target_ci, rec.target_ci);
    ASSERT_EQ(parsed->has_round_state, with_state);
    if (with_state) {
      EXPECT_EQ(parsed->round_state.batch, rec.round_state.batch);
      EXPECT_EQ(parsed->round_state.sojourn.m2, rec.round_state.sojourn.m2);
      EXPECT_EQ(parsed->round_state.sojourn_quantiles.rng_state,
                rec.round_state.sojourn_quantiles.rng_state);
      EXPECT_EQ(parsed->round_state.sojourn_quantiles.sample,
                rec.round_state.sojourn_quantiles.sample);
      EXPECT_EQ(parsed->round_state.sojourn_ci.batch_sum,
                rec.round_state.sojourn_ci.batch_sum);
    }
  }
}

TEST(CellRecord, NanValueSurvivesTheRoundTrip) {
  CellRecord rec;
  rec.values = {std::numeric_limits<double>::quiet_NaN()};
  const CacheKey key = sample_key();
  const auto parsed = parse_record(key, encode_record(key, rec));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->values.size(), 1u);
  EXPECT_TRUE(std::isnan(parsed->values[0]));
}

TEST(CellRecord, CorruptEntriesAreRejectedNotThrown) {
  const CacheKey key = sample_key();
  const std::string good = encode_record(key, sample_record(true));
  ASSERT_TRUE(parse_record(key, good).has_value());

  // Truncation at any prefix must reject, never throw.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, good.size() / 2,
                          good.size() - 1})
    EXPECT_FALSE(parse_record(key, good.substr(0, len)).has_value()) << len;

  EXPECT_FALSE(parse_record(key, "not json at all").has_value());
  EXPECT_FALSE(parse_record(key, "{}").has_value());

  // Version-stamp mismatch: a record from a different engine version.
  std::string stale = good;
  const auto at = stale.find("rlb-cache-v1");
  ASSERT_NE(at, std::string::npos);
  stale.replace(at, 12, "rlb-cache-v0");
  EXPECT_FALSE(parse_record(key, stale).has_value());

  // Key mismatch (digest collision / copied file): embedded canonical
  // key differs from the probe's.
  CacheKey other("power_of_d");
  other.set("rho", 0.95);
  EXPECT_FALSE(parse_record(other, good).has_value());
}

class ResultCacheDir : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND process: ctest -j runs each test in its own
    // process, so a shared name would race between concurrent tests.
    dir_ = ::testing::TempDir() + "rlb_result_cache_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ResultCacheDir, StoreThenLookupHitsAtTheSameTarget) {
  ResultCache cache(dir_, CacheMode::kReadWrite);
  const CacheKey key = sample_key();
  cache.store(key, sample_record(true));
  EXPECT_EQ(cache.stored(), 1u);

  const auto hit = cache.lookup(key, 0.05, false);
  EXPECT_EQ(hit.outcome, ResultCache::Lookup::Outcome::kHit);
  EXPECT_EQ(hit.record.values.size(), 5u);
  EXPECT_EQ(cache.hits(), 1u);

  // Different target, no --refine: miss (and no discard — the entry is
  // intact, just not applicable).
  const auto miss = cache.lookup(key, 0.01, false);
  EXPECT_EQ(miss.outcome, ResultCache::Lookup::Outcome::kMiss);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.discarded(), 0u);

  // Tighter target with --refine: the looser record's round state seeds
  // a refinement.
  const auto refine = cache.lookup(key, 0.01, true);
  EXPECT_EQ(refine.outcome, ResultCache::Lookup::Outcome::kRefine);
  EXPECT_TRUE(refine.record.has_round_state);
  EXPECT_EQ(cache.refined(), 1u);

  // LOOSER target with --refine: resuming would overshoot the cold
  // stopping point; must recompute.
  const auto looser = cache.lookup(key, 0.10, true);
  EXPECT_EQ(looser.outcome, ResultCache::Lookup::Outcome::kMiss);
}

TEST_F(ResultCacheDir, ReadOnlyNeverWritesAndRefreshNeverReads) {
  {
    ResultCache seed_cache(dir_, CacheMode::kReadWrite);
    seed_cache.store(sample_key(), sample_record(false));
  }
  ResultCache readonly(dir_, CacheMode::kReadOnly);
  EXPECT_EQ(readonly.lookup(sample_key(), 0.05, false).outcome,
            ResultCache::Lookup::Outcome::kHit);
  CacheKey other("other");
  readonly.store(other, sample_record(false));
  EXPECT_EQ(readonly.stored(), 0u);
  EXPECT_EQ(readonly.lookup(other, 0.05, false).outcome,
            ResultCache::Lookup::Outcome::kMiss);

  ResultCache refresh(dir_, CacheMode::kRefresh);
  EXPECT_EQ(refresh.lookup(sample_key(), 0.05, false).outcome,
            ResultCache::Lookup::Outcome::kMiss);
  EXPECT_EQ(refresh.misses(), 1u);
}

TEST_F(ResultCacheDir, CorruptedFileIsDiscardedAndOverwritable) {
  ResultCache cache(dir_, CacheMode::kReadWrite);
  const CacheKey key = sample_key();
  cache.store(key, sample_record(false));

  // Clobber the one record file on disk.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream f(entry.path(), std::ios::trunc);
    f << "{\"version\":\"rlb-cache-v1\",\"key\":\"trunc";
    ++files;
  }
  ASSERT_EQ(files, 1u);

  const auto miss = cache.lookup(key, 0.05, false);
  EXPECT_EQ(miss.outcome, ResultCache::Lookup::Outcome::kMiss);
  EXPECT_EQ(cache.discarded(), 1u);

  // The recompute-and-store path heals the entry.
  cache.store(key, sample_record(false));
  EXPECT_EQ(cache.lookup(key, 0.05, false).outcome,
            ResultCache::Lookup::Outcome::kHit);
}

TEST_F(ResultCacheDir, SummaryLineReportsAllCounters) {
  ResultCache cache(dir_, CacheMode::kReadWrite);
  cache.store(sample_key(), sample_record(false));
  (void)cache.lookup(sample_key(), 0.05, false);
  EXPECT_EQ(cache.summary(),
            "cache summary: hits=1 misses=0 refined=0 discarded=0 stored=1");
}

// ---------------------------------------------------------------------------
// The resume theorem, unit level: run_replicas_adaptive_resume from a
// loose-target stop continues EXACTLY the rounds a cold tight-target run
// executes (geometric planner: round budgets depend only on the round
// index, so rounds 0..k of both runs are the same simulations in the
// same merge order).
// ---------------------------------------------------------------------------

rlb::sim::AdaptivePlan make_plan(double target) {
  rlb::sim::AdaptivePlan plan;
  plan.replicas = 2;
  plan.base_seed = 99;
  plan.target_ci = target;
  plan.confidence = 0.95;
  plan.initial_jobs = 400;
  plan.max_jobs = 400 << 6;
  plan.warmup_jobs = 10;
  return plan;
}

/// Toy replica: BatchMeans over a splitmix-derived uniform stream.
rlb::sim::BatchMeans toy_replica(std::uint64_t seed, std::uint64_t jobs,
                                 std::uint64_t warmup) {
  rlb::sim::BatchMeans bm(25);
  std::uint64_t state = seed;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double x =
        static_cast<double>(state >> 11) * 0x1.0p-53;  // U(0,1)
    if (j >= warmup) bm.add(x);
  }
  return bm;
}

TEST(AdaptiveResume, ResumeEqualsColdRunBitForBit) {
  using rlb::sim::BatchMeans;
  auto& budget = rlb::util::ThreadBudget::serial();
  const auto run = [](int /*replica*/, std::uint64_t seed,
                      std::uint64_t jobs, std::uint64_t warmup) {
    return toy_replica(seed, jobs, warmup);
  };
  const auto merge = [](BatchMeans& into, const BatchMeans& from) {
    into.merge(from);
  };
  const auto half_width = [](const BatchMeans& merged) {
    return merged.half_width_or_infinity(0.95);
  };

  // Cold run at the LOOSE target: the checkpoint source.
  rlb::sim::AdaptiveReport loose_report;
  const BatchMeans loose = rlb::sim::run_replicas_adaptive<BatchMeans>(
      make_plan(0.05), budget, run, merge, half_width, loose_report);
  ASSERT_TRUE(loose_report.converged);

  // Cold run at the TIGHT target: the reference.
  rlb::sim::AdaptiveReport cold_report;
  const BatchMeans cold = rlb::sim::run_replicas_adaptive<BatchMeans>(
      make_plan(0.01), budget, run, merge, half_width, cold_report);
  ASSERT_TRUE(cold_report.converged);
  ASSERT_GT(cold_report.rounds, loose_report.rounds)
      << "tighten the targets: the tight run must need more rounds for "
         "this test to exercise resumption";

  // Resume the loose stop at the tight target — exact state handoff.
  rlb::sim::AdaptiveReport resumed_report;
  const BatchMeans resumed =
      rlb::sim::run_replicas_adaptive_resume<BatchMeans>(
          make_plan(0.01),
          rlb::sim::AdaptiveResume{loose_report.rounds,
                                   loose_report.jobs_used},
          BatchMeans::from_state(loose.state()), budget, run, merge,
          half_width, resumed_report);

  EXPECT_EQ(resumed.state().batch_means.mean,
            cold.state().batch_means.mean);
  EXPECT_EQ(resumed.state().batch_means.m2, cold.state().batch_means.m2);
  EXPECT_EQ(resumed.state().batch_means.count,
            cold.state().batch_means.count);
  EXPECT_EQ(resumed.state().in_batch, cold.state().in_batch);
  EXPECT_EQ(resumed.state().batch_sum, cold.state().batch_sum);
  EXPECT_EQ(resumed_report.rounds, cold_report.rounds);
  EXPECT_EQ(resumed_report.jobs_used, cold_report.jobs_used);
  EXPECT_EQ(resumed_report.half_width, cold_report.half_width);
  EXPECT_TRUE(resumed_report.converged);
  // And the refinement actually SAVED budget: only the suffix rounds'
  // jobs were newly simulated.
  EXPECT_LT(cold_report.jobs_used - loose_report.jobs_used,
            cold_report.jobs_used);
}

TEST(AdaptiveResume, AlreadyConvergedResumeReturnsImmediately) {
  using rlb::sim::BatchMeans;
  auto& budget = rlb::util::ThreadBudget::serial();
  const auto run = [](int, std::uint64_t seed, std::uint64_t jobs,
                      std::uint64_t warmup) {
    return toy_replica(seed, jobs, warmup);
  };
  const auto merge = [](BatchMeans& into, const BatchMeans& from) {
    into.merge(from);
  };
  const auto half_width = [](const BatchMeans& merged) {
    return merged.half_width_or_infinity(0.95);
  };
  rlb::sim::AdaptiveReport loose_report;
  const BatchMeans loose = rlb::sim::run_replicas_adaptive<BatchMeans>(
      make_plan(0.05), budget, run, merge, half_width, loose_report);

  // "Refining" to the SAME target must simulate nothing new.
  rlb::sim::AdaptiveReport same_report;
  const BatchMeans same = rlb::sim::run_replicas_adaptive_resume<BatchMeans>(
      make_plan(0.05),
      rlb::sim::AdaptiveResume{loose_report.rounds, loose_report.jobs_used},
      BatchMeans::from_state(loose.state()), budget, run, merge, half_width,
      same_report);
  EXPECT_EQ(same_report.jobs_used, loose_report.jobs_used);
  EXPECT_EQ(same_report.rounds, loose_report.rounds);
  EXPECT_TRUE(same_report.converged);
  EXPECT_EQ(same.state().batch_means.mean, loose.state().batch_means.mean);
}

// ---------------------------------------------------------------------------
// The same theorem end to end through the cluster simulator AND the JSON
// record: checkpoint -> encode_record -> parse_record -> refine equals a
// cold adaptive run at the tighter target, field for field.
// ---------------------------------------------------------------------------

TEST(ClusterRefine, RefineThroughJsonRecordEqualsColdRun) {
  using namespace rlb::sim;
  ClusterConfig cfg;
  cfg.servers = 8;
  cfg.seed = 4242;
  cfg.replicas = 2;
  const auto arr = make_exponential(0.9 * cfg.servers);
  const auto svc = make_exponential(1.0);
  auto& budget = rlb::util::ThreadBudget::serial();

  AdaptivePlan loose_plan;
  loose_plan.replicas = cfg.replicas;
  loose_plan.base_seed = cfg.seed;
  loose_plan.target_ci = 0.25;
  loose_plan.initial_jobs = 4000;
  loose_plan.max_jobs = 4000 << 8;
  loose_plan.warmup_jobs = 100;
  AdaptivePlan tight_plan = loose_plan;
  tight_plan.target_ci = 0.06;

  SqdPolicy policy(cfg.servers, 2);

  ClusterRoundState loose_state;
  const ClusterResult loose = simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, loose_plan, budget, &loose_state);
  ASSERT_TRUE(loose.adaptive.converged);

  const ClusterResult cold = simulate_cluster_adaptive(
      cfg, policy, *arr, *svc, tight_plan, budget);
  ASSERT_TRUE(cold.adaptive.converged);
  ASSERT_GT(cold.adaptive.rounds, loose.adaptive.rounds)
      << "targets too close: refinement would be a no-op";

  // Round-trip the checkpoint through the on-disk record format.
  CellRecord rec;
  rec.values = {loose.mean_sojourn};
  rec.report = loose.adaptive;
  rec.round_state = loose_state;
  rec.has_round_state = true;
  const CacheKey key = sample_key();
  const auto parsed = parse_record(key, encode_record(key, rec));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->has_round_state);

  const ClusterResult refined = simulate_cluster_refine(
      cfg, policy, *arr, *svc, tight_plan, parsed->round_state, budget);

  EXPECT_EQ(refined.mean_sojourn, cold.mean_sojourn);
  EXPECT_EQ(refined.mean_wait, cold.mean_wait);
  EXPECT_EQ(refined.ci95_sojourn, cold.ci95_sojourn);
  EXPECT_EQ(refined.p50_sojourn, cold.p50_sojourn);
  EXPECT_EQ(refined.p95_sojourn, cold.p95_sojourn);
  EXPECT_EQ(refined.p99_sojourn, cold.p99_sojourn);
  EXPECT_EQ(refined.jobs_measured, cold.jobs_measured);
  EXPECT_EQ(refined.sim_time, cold.sim_time);
  EXPECT_EQ(refined.adaptive.rounds, cold.adaptive.rounds);
  EXPECT_EQ(refined.adaptive.jobs_used, cold.adaptive.jobs_used);
  EXPECT_EQ(refined.adaptive.half_width, cold.adaptive.half_width);

  // Budget accounting: the refinement only simulated the suffix rounds.
  const std::uint64_t newly_simulated =
      refined.adaptive.jobs_used - loose.adaptive.jobs_used;
  EXPECT_LT(newly_simulated, cold.adaptive.jobs_used);
  EXPECT_GT(newly_simulated, 0u);
}

TEST(ClusterRefine, BatchSizeMismatchIsRejected) {
  using namespace rlb::sim;
  ClusterConfig cfg;
  cfg.servers = 4;
  cfg.seed = 7;
  const auto arr = make_exponential(0.8 * cfg.servers);
  const auto svc = make_exponential(1.0);
  auto& budget = rlb::util::ThreadBudget::serial();
  AdaptivePlan plan;
  plan.base_seed = cfg.seed;
  plan.target_ci = 0.5;
  plan.initial_jobs = 2000;
  plan.max_jobs = 64000;
  plan.warmup_jobs = 50;
  SqdPolicy policy(cfg.servers, 2);
  ClusterRoundState state;
  (void)simulate_cluster_adaptive(cfg, policy, *arr, *svc, plan, budget,
                                  &state);
  // A different cfg.batch_size derives a different batch: refuse.
  ClusterConfig other = cfg;
  other.batch_size = state.batch + 1;
  EXPECT_THROW(simulate_cluster_refine(other, policy, *arr, *svc, plan,
                                       state, budget),
               std::invalid_argument);
}

}  // namespace
