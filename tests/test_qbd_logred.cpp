#include "qbd/logred.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "qbd/drift.h"
#include "sqd/blocks_builder.h"

namespace {

using rlb::linalg::Matrix;
namespace qbd = rlb::qbd;

// The scalar M/M/1 QBD: A0 = lambda, A1 = -(lambda+mu), A2 = mu.
// G = rho-ish: actually G = 1 (certain return) and R = lambda/mu.
qbd::Blocks mm1_blocks(double lambda, double mu) {
  qbd::Blocks b;
  b.A0 = Matrix(1, 1);
  b.A0(0, 0) = lambda;
  b.A1 = Matrix(1, 1);
  b.A1(0, 0) = -(lambda + mu);
  b.A2 = Matrix(1, 1);
  b.A2(0, 0) = mu;
  return b;
}

TEST(LogReduction, Mm1ScalarCase) {
  const auto b = mm1_blocks(0.6, 1.0);
  const auto g = qbd::logarithmic_reduction(b.A0, b.A1, b.A2);
  EXPECT_TRUE(g.converged);
  // For a positive-recurrent QBD, G is stochastic: G = 1 in the scalar case.
  EXPECT_NEAR(g.G(0, 0), 1.0, 1e-12);
  const Matrix r = qbd::rate_matrix_from_g(b.A0, b.A1, g.G);
  EXPECT_NEAR(r(0, 0), 0.6, 1e-12);
}

TEST(LogReduction, ResidualsTiny) {
  const auto b = mm1_blocks(0.95, 1.0);
  const auto g = qbd::logarithmic_reduction(b.A0, b.A1, b.A2);
  EXPECT_LT(g.residual, 1e-12);
  const Matrix r = qbd::rate_matrix_from_g(b.A0, b.A1, g.G);
  EXPECT_LT(qbd::r_residual(b.A0, b.A1, b.A2, r), 1e-12);
}

TEST(LogReduction, MatchesFunctionalIterationOnBoundModel) {
  const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, 0.8, 1.0}, 2,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto g_log =
      qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1, q.blocks.A2);
  const auto g_fun =
      qbd::functional_iteration(q.blocks.A0, q.blocks.A1, q.blocks.A2);
  EXPECT_TRUE(g_log.converged);
  EXPECT_TRUE(g_fun.converged);
  EXPECT_LT((g_log.G - g_fun.G).max_abs(), 1e-9);
  // Quadratic vs linear convergence.
  EXPECT_LT(g_log.iterations, g_fun.iterations);
}

TEST(LogReduction, GIsStochasticWhenRecurrent) {
  // For a recurrent QBD every level is eventually left downward, so G's
  // rows sum to one.
  const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, 0.9, 1.0}, 2,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto g =
      qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1, q.blocks.A2);
  for (double rs : g.G.row_sums()) EXPECT_NEAR(rs, 1.0, 1e-10);
  for (std::size_t i = 0; i < g.G.rows(); ++i)
    for (std::size_t j = 0; j < g.G.cols(); ++j)
      EXPECT_GE(g.G(i, j), -1e-14);
}

TEST(LogReduction, PaperClaimFewIterations) {
  // Section IV-A: "the number of iterations is within k = 6" for the
  // paper's configurations. Verify on the Figure 10 configs at high load.
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {3, 2}, {3, 3}, {6, 3}}) {
    const rlb::sqd::BoundModel model(rlb::sqd::Params{n, 2, 0.95, 1.0}, t,
                                     rlb::sqd::BoundKind::Lower);
    const auto q = rlb::sqd::build_bound_qbd(model);
    const auto g =
        qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1, q.blocks.A2);
    EXPECT_TRUE(g.converged);
    EXPECT_LE(g.iterations, 8) << n << ' ' << t;  // small slack over 6
  }
}

TEST(RateMatrix, SpectralRadiusBelowOneWhenStable) {
  const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, 0.85, 1.0}, 2,
                                   rlb::sqd::BoundKind::Lower);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto g =
      qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1, q.blocks.A2);
  const Matrix r = qbd::rate_matrix_from_g(q.blocks.A0, q.blocks.A1, g.G);
  const auto sp = rlb::linalg::power_iteration(r);
  EXPECT_TRUE(sp.converged);
  EXPECT_LT(sp.value, 1.0);
  EXPECT_GT(sp.value, 0.0);
}

TEST(RateMatrix, Theorem3SpectralRadiusIsRhoN) {
  // The lower bound model's R has spectral radius rho^N (Theorem 3).
  for (double rho : {0.5, 0.8, 0.95}) {
    const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, rho, 1.0}, 2,
                                     rlb::sqd::BoundKind::Lower);
    const auto q = rlb::sqd::build_bound_qbd(model);
    const auto g =
        qbd::logarithmic_reduction(q.blocks.A0, q.blocks.A1, q.blocks.A2);
    const Matrix r = qbd::rate_matrix_from_g(q.blocks.A0, q.blocks.A1, g.G);
    const auto sp = rlb::linalg::power_iteration(r);
    EXPECT_NEAR(sp.value, std::pow(rho, 3), 1e-8) << rho;
  }
}

TEST(Drift, LowerModelStableIffRhoBelowOne) {
  for (double rho : {0.5, 0.9, 0.99}) {
    const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, rho, 1.0}, 2,
                                     rlb::sqd::BoundKind::Lower);
    const auto q = rlb::sqd::build_bound_qbd(model);
    const auto d = qbd::drift_condition(q.blocks.A0, q.blocks.A1, q.blocks.A2);
    EXPECT_TRUE(d.stable) << rho;
    EXPECT_GT(d.up, 0.0);
    EXPECT_GT(d.down, d.up);
  }
  // Jockeying preserves work, so the lower model stays stable arbitrarily
  // close to saturation.
  const rlb::sqd::BoundModel near_saturation(
      rlb::sqd::Params{3, 2, 0.999, 1.0}, 2, rlb::sqd::BoundKind::Lower);
  const auto qn = rlb::sqd::build_bound_qbd(near_saturation);
  EXPECT_TRUE(
      qbd::drift_condition(qn.blocks.A0, qn.blocks.A1, qn.blocks.A2).stable);
}

TEST(Drift, UpperModelUnstableAtHighRhoSmallT) {
  // Figure 10(a): the T = 2 upper bound for N = 3 diverges well before
  // rho = 1.
  const rlb::sqd::BoundModel model(rlb::sqd::Params{3, 2, 0.95, 1.0}, 2,
                                   rlb::sqd::BoundKind::Upper);
  const auto q = rlb::sqd::build_bound_qbd(model);
  const auto d = qbd::drift_condition(q.blocks.A0, q.blocks.A1, q.blocks.A2);
  EXPECT_FALSE(d.stable);
}

}  // namespace
