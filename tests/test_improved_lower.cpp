// Theorems 2 and 3: the improved lower bound solver.
#include <cmath>

#include <gtest/gtest.h>

#include "sqd/bound_solver.h"
#include "sqd/interarrival.h"
#include "sqd/mm_queues.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::BoundResult;
using rlb::sqd::Params;

TEST(ImprovedLower, AgreesWithGenericSolverEverywhere) {
  // Theorem 3 says the full matrix-geometric solve and the scalar rho^N
  // solve produce the same stationary quantities for the lower model.
  for (int n : {2, 3, 4}) {
    for (int t : {1, 2, 3}) {
      for (double rho : {0.3, 0.6, 0.85, 0.95}) {
        const BoundModel model(Params{n, 2, rho, 1.0}, t, BoundKind::Lower);
        const auto q = rlb::sqd::build_bound_qbd(model);
        const BoundResult generic = rlb::sqd::solve_bound(model, q);
        const BoundResult improved =
            rlb::sqd::solve_lower_improved(model, q, rho);
        EXPECT_NEAR(generic.mean_waiting_jobs, improved.mean_waiting_jobs,
                    1e-7 * (1.0 + generic.mean_waiting_jobs))
            << "N=" << n << " T=" << t << " rho=" << rho;
        EXPECT_NEAR(generic.mean_delay, improved.mean_delay,
                    1e-7 * generic.mean_delay);
      }
    }
  }
}

TEST(ImprovedLower, DefaultUsesPoissonSigma) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  const BoundResult r = rlb::sqd::solve_lower_improved(model);
  EXPECT_NEAR(r.scalar_rate, std::pow(0.7, 3), 1e-12);
  EXPECT_EQ(r.logred_iterations, 0);  // no G/R iteration ran
}

TEST(ImprovedLower, SigmaFromTheorem2MatchesRhoForPoisson) {
  const double rho = 0.8;
  const rlb::sqd::ExponentialInterarrival arrivals(rho);  // mu = 1
  const double sigma = rlb::sqd::solve_sigma(arrivals, 1.0).sigma;
  const BoundModel model(Params{3, 2, rho, 1.0}, 2, BoundKind::Lower);
  const BoundResult via_sigma = rlb::sqd::solve_lower_improved(model, sigma);
  const BoundResult via_rho = rlb::sqd::solve_lower_improved(model);
  EXPECT_NEAR(via_sigma.mean_delay, via_rho.mean_delay, 1e-9);
}

TEST(ImprovedLower, RejectsUpperModel) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Upper);
  EXPECT_THROW(rlb::sqd::solve_lower_improved(model), std::invalid_argument);
}

TEST(ImprovedLower, RejectsSigmaOutsideUnitInterval) {
  const BoundModel model(Params{3, 2, 0.7, 1.0}, 2, BoundKind::Lower);
  EXPECT_THROW(rlb::sqd::solve_lower_improved(model, 1.0),
               std::invalid_argument);
  EXPECT_THROW(rlb::sqd::solve_lower_improved(model, 0.0),
               std::invalid_argument);
}

TEST(ImprovedLower, SingleServerIsMm1) {
  const double lambda = 0.85;
  const BoundModel model(Params{1, 1, lambda, 1.0}, 1, BoundKind::Lower);
  const BoundResult r = rlb::sqd::solve_lower_improved(model);
  const rlb::sqd::Mm1 ref{lambda, 1.0};
  EXPECT_NEAR(r.mean_delay, ref.mean_sojourn(), 1e-9);
}

TEST(ImprovedLower, MonotoneInRho) {
  const int n = 3, t = 2;
  double prev = 0.0;
  for (double rho = 0.1; rho < 0.99; rho += 0.1) {
    const BoundModel model(Params{n, 2, rho, 1.0}, t, BoundKind::Lower);
    const double delay = rlb::sqd::solve_lower_improved(model).mean_delay;
    EXPECT_GT(delay, prev);
    prev = delay;
  }
}

TEST(ImprovedLower, HighUtilizationStillSolvable) {
  // The improved path avoids the G iteration, so it stays cheap and
  // numerically clean even at rho = 0.99.
  const BoundModel model(Params{6, 2, 0.99, 1.0}, 2, BoundKind::Lower);
  const BoundResult r = rlb::sqd::solve_lower_improved(model);
  EXPECT_GT(r.mean_delay, 10.0);  // heavily loaded
  EXPECT_NEAR(r.total_probability, 1.0, 1e-8);
}

}  // namespace
