// Scenario "batch_arrivals" — what job batching does to SQ(d) delay at a
// fixed mean load. Batches (geometric or fixed sizes) arrive at Poisson
// epochs with the base rate scaled down by the batch mean, so every row
// carries the same job rate rho*N; only the clumping changes. Each
// (batch size, size law) simulation is one sweep cell; the two size-law
// columns of a row share random streams (common random numbers).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/arrival_process.h"
#include "sim/cluster_sim.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kKinds = 2;  // geometric, fixed

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 8));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 13579));

  using namespace rlb::sim;
  const std::vector<int> batch_sizes{1, 2, 4, 8};

  struct CellResult {
    double mean = 0.0;
    double p99 = 0.0;
    rlb::sim::AdaptiveReport report;
  };
  const bool adaptive = ctx.adaptive().enabled();
  const auto cells = ctx.map<CellResult>(
      batch_sizes.size() * kKinds, [&](std::size_t i) {
        const std::size_t b = i / kKinds;
        const auto mean_batch = static_cast<double>(batch_sizes[b]);
        const auto kind = i % kKinds == 0
                              ? BatchArrivalProcess::BatchSizes::Geometric
                              : BatchArrivalProcess::BatchSizes::Fixed;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per batch-size row (common random numbers across the
        // two size-law columns).
        cfg.seed = rlb::engine::cell_seed(seed, b);
        cfg.replicas = ctx.replicas();
        // Batch epochs at rate rho*n / mean: the job rate stays rho*n.
        const auto epoch_gap = make_exponential(rho * n / mean_batch);
        BatchArrivalProcess arrivals(
            std::make_unique<RenewalArrivals>(*epoch_gap), mean_batch,
            kind);
        const auto svc = make_exponential(1.0);
        SqdPolicy policy(n, d);
        if (adaptive) {
          const auto res = simulate_cluster_adaptive(
              cfg, policy, arrivals, *svc, ctx.adaptive_plan(cfg.seed, jobs),
              ctx.budget());
          return CellResult{res.mean_sojourn, res.p99_sojourn, res.adaptive};
        }
        const auto res =
            simulate_cluster(cfg, policy, arrivals, *svc, ctx.budget());
        return CellResult{res.mean_sojourn, res.p99_sojourn, {}};
      });

  ScenarioOutput out;
  out.preamble =
      "Batch arrivals for sq(" + std::to_string(d) + "), N = " +
      std::to_string(n) + " servers at utilization " +
      rlb::util::fmt(rho, 2) +
      ".\nBatch epochs are Poisson at rate rho*N / E[batch]; every row "
      "carries the same\nmean job rate, only the clumping changes.";
  std::vector<std::string> header{"batch", "geom delay", "geom p99",
                                  "fixed delay", "fixed p99"};
  if (adaptive) rlb::engine::add_adaptive_columns(header);
  auto& table = out.add_table("main", header);
  for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
    std::vector<std::string> row{std::to_string(batch_sizes[b])};
    auto report = rlb::sim::AdaptiveReport::row_identity();
    for (std::size_t k = 0; k < kKinds; ++k) {
      row.push_back(rlb::util::fmt(cells[b * kKinds + k].mean, 4));
      row.push_back(rlb::util::fmt(cells[b * kKinds + k].p99, 4));
      report.combine(cells[b * kKinds + k].report);
    }
    if (adaptive) rlb::engine::add_adaptive_cells(row, report);
    table.add_row(std::move(row));
  }
  if (adaptive)
    out.note(rlb::engine::adaptive_note("the two size-law columns"));
  out.postamble =
      "Reading: batching inflates delay well beyond the single-arrival "
      "model at equal\nload — geometric batches (occasionally huge) more "
      "than fixed ones. Batch = 1\nreproduces the plain Poisson stream.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "batch_arrivals",
    "Geometric and fixed batch-arrival streams at equal mean load: delay "
    "and p99 vs batch size under SQ(d)",
    {{"n", "number of servers", "8"},
     {"d", "polled servers", "2"},
     {"rho", "utilization (mean job rate is rho*N)", "0.85"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "13579"}},
    run}};

}  // namespace
