// Scenario "capacity_planning" — capacity planning with trustworthy
// finite-N numbers.
//
// "How hot can I run my N servers while keeping mean delay under an SLO?"
// The classical N->infinity formula (Eq. 16) over-promises for small
// clusters — the paper's finite-regime bounds give safe answers. For each
// N we find the highest utilization whose delay (certified by the bounds)
// stays below the SLO, and compare with what the asymptotic formula would
// have claimed. Each N is one sweep cell (three rho scans).
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

// Largest rho (on a grid) such that delay_at(rho) stays below the SLO.
template <typename F>
double max_utilization(F&& delay_at, double slo) {
  double best = 0.0;
  for (double rho = 0.05; rho <= 0.99; rho += 0.01) {
    if (delay_at(rho) <= slo) best = rho;
  }
  return best;
}

struct CellResult {
  double asym_max = 0.0;
  double lower_max = 0.0;
  double certified_max = 0.0;
};

ScenarioOutput run(ScenarioContext& ctx) {
  const double slo = ctx.cli().get_double("slo", 1.5);  // mean delay budget
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const int t = static_cast<int>(ctx.cli().get_int("T", 3));

  const std::vector<int> fleet{2, 3, 6, 12};
  const auto cells = ctx.map<CellResult>(
      fleet.size(), [&](std::size_t i) {
        const int n = fleet[i];
        CellResult cell;
        cell.asym_max = max_utilization(
            [&](double rho) { return rlb::sqd::asymptotic_delay(rho, d); },
            slo);
        cell.lower_max = max_utilization(
            [&](double rho) {
              const BoundModel m(Params{n, d, rho, 1.0}, t,
                                 BoundKind::Lower);
              return rlb::sqd::solve_lower_improved(m).mean_delay;
            },
            slo);
        // Certified: the delay is provably under the SLO when even the
        // upper bound is (skip utilizations where the upper model is
        // unstable).
        cell.certified_max = max_utilization(
            [&](double rho) {
              try {
                const BoundModel m(Params{n, d, rho, 1.0}, t,
                                   BoundKind::Upper);
                return rlb::sqd::solve_bound(m).mean_delay;
              } catch (const rlb::qbd::UnstableError&) {
                return slo + 1.0;  // not certifiable here
              }
            },
            slo);
        return cell;
      });

  ScenarioOutput out;
  out.preamble = "Max sustainable utilization for mean delay <= " +
                 rlb::util::fmt(slo, 2) + " (service time 1.0), SQ(" +
                 std::to_string(d) + ")";
  auto& table = out.add_table(
      "main", {"N", "asymptotic says", "lower bound says",
               "certified (upper bound)", "asym overshoot"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const CellResult& c = cells[i];
    table.add_row({std::to_string(fleet[i]), rlb::util::fmt(c.asym_max, 2),
                   rlb::util::fmt(c.lower_max, 2),
                   rlb::util::fmt(c.certified_max, 2),
                   rlb::util::fmt(c.asym_max - c.certified_max, 2)});
  }
  out.postamble =
      "Reading: for small N the asymptotic formula suggests running hotter "
      "than the\nbounds can certify — exactly the regime the paper warns "
      "about. As N grows the\nthree answers converge.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "capacity_planning",
    "Highest utilization certified under a mean-delay SLO by the bounds, vs "
    "the asymptotic formula's claim",
    {{"slo", "mean delay budget", "1.5"},
     {"d", "polled servers per arrival", "2"},
     {"T", "bound model threshold", "3"}},
    run}};

}  // namespace
