// Scenario: capacity planning with trustworthy finite-N numbers.
//
// "How hot can I run my N servers while keeping mean delay under an SLO?"
// The classical N->infinity formula (Eq. 16) over-promises for small
// clusters — the paper's finite-regime bounds give safe answers. For each
// N we find the highest utilization whose delay (certified by the bounds)
// stays below the SLO, and compare with what the asymptotic formula would
// have claimed.
#include <iostream>

#include "qbd/solver.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

// Largest rho (on a grid) such that predicate(rho) stays below the SLO.
template <typename F>
double max_utilization(F&& delay_at, double slo) {
  double best = 0.0;
  for (double rho = 0.05; rho <= 0.99; rho += 0.01) {
    if (delay_at(rho) <= slo) best = rho;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const double slo = cli.get_double("slo", 1.5);  // mean delay budget
  const int d = static_cast<int>(cli.get_int("d", 2));
  const int t = static_cast<int>(cli.get_int("T", 3));
  cli.finish();

  std::cout << "Max sustainable utilization for mean delay <= " << slo
            << " (service time 1.0), SQ(" << d << ")\n\n";

  rlb::util::Table table({"N", "asymptotic says", "lower bound says",
                          "certified (upper bound)", "asym overshoot"});
  for (int n : {2, 3, 6, 12}) {
    const double asym_max = max_utilization(
        [&](double rho) { return rlb::sqd::asymptotic_delay(rho, d); }, slo);

    const double lower_max = max_utilization(
        [&](double rho) {
          const BoundModel m(Params{n, d, rho, 1.0}, t, BoundKind::Lower);
          return rlb::sqd::solve_lower_improved(m).mean_delay;
        },
        slo);

    // Certified: the delay is provably under the SLO when even the upper
    // bound is (skip utilizations where the upper model is unstable).
    const double certified_max = max_utilization(
        [&](double rho) {
          try {
            const BoundModel m(Params{n, d, rho, 1.0}, t, BoundKind::Upper);
            return rlb::sqd::solve_bound(m).mean_delay;
          } catch (const rlb::qbd::UnstableError&) {
            return slo + 1.0;  // not certifiable here
          }
        },
        slo);

    table.add_row({std::to_string(n), rlb::util::fmt(asym_max, 2),
                   rlb::util::fmt(lower_max, 2),
                   rlb::util::fmt(certified_max, 2),
                   rlb::util::fmt(asym_max - certified_max, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nReading: for small N the asymptotic formula suggests running "
         "hotter than the\nbounds can certify — exactly the regime the paper "
         "warns about. As N grows the\nthree answers converge.\n";
  return 0;
}
