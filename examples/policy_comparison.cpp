// Scenario "policy_comparison" — SQ(d) against the classic low-feedback
// alternatives it competes with: join-idle-queue (JIQ, Lu et al. 2011)
// and join-below-threshold-d (JBT), bracketed by uniform random routing
// and full-information JSQ. One delay table and one p99 tail table, rho
// down the rows and one column per policy, comparable to the fig10 delay
// curves. Each (rho, policy) simulation is one sweep cell; policy columns
// share the rho row's random streams (common random numbers).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/adaptive_columns.h"
#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kPolicies = 5;  // random, sq(d), jbt, jiq, jsq

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 16));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const int jbt_t = static_cast<int>(ctx.cli().get_int("jbt-t", 3));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 24680));

  using namespace rlb::sim;
  const std::vector<double> rhos{0.50, 0.70, 0.80, 0.90, 0.95};
  const auto make_policy = [&](std::size_t task) -> std::unique_ptr<Policy> {
    switch (task) {
      case 0:
        return std::make_unique<SqdPolicy>(n, 1);
      case 1:
        return std::make_unique<SqdPolicy>(n, d);
      case 2:
        return std::make_unique<JbtPolicy>(n, d, jbt_t);
      case 3:
        return std::make_unique<JiqPolicy>(n);
      default:
        return std::make_unique<JsqPolicy>();
    }
  };

  // Cell values: [0] mean sojourn, [1] p99 sojourn.
  const bool adaptive = ctx.adaptive().enabled();
  const auto cells = ctx.map_cells(
      rhos.size() * kPolicies,
      [&](std::size_t i) {
        // Row seed is shared across policy columns (common random
        // numbers), so the policy task index joins it in the key.
        auto key = ctx.cell_key(
            "policy_comparison",
            rlb::engine::cell_seed(seed, i / kPolicies));
        key.set("n", n);
        key.set("d", d);
        key.set("jbt-t", jbt_t);
        key.set("jobs", jobs);
        key.set("rho", rhos[i / kPolicies]);
        key.set("task", static_cast<std::uint64_t>(i % kPolicies));
        return key;
      },
      [&](std::size_t i, const rlb::engine::CellRecord* refine_from) {
        const std::size_t r = i / kPolicies;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per rho row: policy columns share random streams
        // (common random numbers), isolating the policy effect.
        cfg.seed = rlb::engine::cell_seed(seed, r);
        cfg.replicas = ctx.replicas();
        const auto arr = make_exponential(rhos[r] * n);
        const auto svc = make_exponential(1.0);
        const auto policy = make_policy(i % kPolicies);
        rlb::engine::CellRecord rec;
        if (adaptive) {
          const auto plan = ctx.adaptive_plan(cfg.seed, jobs);
          ClusterRoundState state;
          const ClusterResult res =
              refine_from != nullptr
                  ? simulate_cluster_refine(cfg, *policy, *arr, *svc, plan,
                                            refine_from->round_state,
                                            ctx.budget(), &state)
                  : simulate_cluster_adaptive(cfg, *policy, *arr, *svc,
                                              plan, ctx.budget(), &state);
          rec.values = {res.mean_sojourn, res.p99_sojourn};
          rec.report = res.adaptive;
          rec.round_state = state;
          rec.has_round_state = true;
          return rec;
        }
        const auto res =
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
        rec.values = {res.mean_sojourn, res.p99_sojourn};
        return rec;
      });

  ScenarioOutput out;
  out.preamble =
      "Dispatch-policy comparison, N = " + std::to_string(n) +
      " servers, Poisson arrivals, Exp(1) service.\nPolicies: uniform "
      "random, the paper's sq(" +
      std::to_string(d) + "), jbt(" + std::to_string(d) +
      ", t=" + std::to_string(jbt_t) + "), jiq (random fallback), jsq.";
  const std::vector<std::string> header{
      "rho",         "random", "sq(" + std::to_string(d) + ")",
      "jbt",         "jiq",    "jsq"};
  auto& delay = out.add_table("delay", header);
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{rlb::util::fmt(rhos[r], 2)};
    for (std::size_t t = 0; t < kPolicies; ++t)
      row.push_back(rlb::util::fmt(cells[r * kPolicies + t].values[0], 4));
    delay.add_row(std::move(row));
  }
  out.note("Mean sojourn time (delay) per policy.");
  auto& tail = out.add_table("tail_p99", header);
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{rlb::util::fmt(rhos[r], 2)};
    for (std::size_t t = 0; t < kPolicies; ++t)
      row.push_back(rlb::util::fmt(cells[r * kPolicies + t].values[1], 4));
    tail.add_row(std::move(row));
  }
  out.note("99th percentile sojourn time per policy.");
  if (adaptive) {
    // The stopping report per (rho, policy) cell: the target statistic
    // is the mean sojourn time; p99 rides along on whatever budget the
    // mean needed.
    std::vector<std::string> adaptive_header{"rho"};
    rlb::engine::add_adaptive_columns(adaptive_header);
    auto& report = out.add_table("adaptive", adaptive_header);
    for (std::size_t r = 0; r < rhos.size(); ++r) {
      auto combined = rlb::sim::AdaptiveReport::row_identity();
      for (std::size_t t = 0; t < kPolicies; ++t)
        combined.combine(cells[r * kPolicies + t].report);
      std::vector<std::string> row{rlb::util::fmt(rhos[r], 2)};
      rlb::engine::add_adaptive_cells(row, combined);
      report.add_row(std::move(row));
    }
    out.note(rlb::engine::adaptive_note("the five policies"));
  }
  out.postamble =
      "Reading: JIQ tracks JSQ while idle servers exist and falls back to "
      "random beyond\nrho ~ 0.9; JBT needs one bit per poll and sits "
      "between sq(d) and random;\nsq(d) degrades the most gracefully at "
      "high load.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "policy_comparison",
    "SQ(d) vs JIQ, JBT(d), random and JSQ: delay and p99 tail across the "
    "load range",
    {{"n", "number of servers", "16"},
     {"d", "polled servers for sq(d)/jbt and the jbt fallback", "2"},
     {"jbt-t", "JBT queue-length threshold", "3"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"seed", "base RNG seed; per-row seeds are derived from it", "24680"}},
    run}};

}  // namespace
