// Scenario "datacenter_dispatch" — choosing a dispatch policy for a small
// service tier.
//
// A team runs N = 12 application servers behind one dispatcher. Polling
// every server on every request (JSQ) is operationally expensive; random
// routing is free but slow. This example quantifies the middle ground —
// the paper's SQ(d) — under realistic (bursty, non-exponential) workloads,
// and shows that d = 2 captures most of JSQ's benefit. Each
// (workload, policy) simulation is one sweep cell.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kPolicies = 4;  // random, sq(2), sq(3), jsq

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 12));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 500'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 97531));

  using namespace rlb::sim;
  const std::vector<std::string> workload_names{
      "poisson/exp", "poisson/lognormal", "bursty/exp", "bursty/lognormal"};
  const auto make_arrivals =
      [&](std::size_t w) -> std::unique_ptr<Distribution> {
    return w < 2 ? make_exponential(rho * n)
                 : make_hyperexp_fitted(1.0 / (rho * n), 4.0);
  };
  const auto make_service =
      [&](std::size_t w) -> std::unique_ptr<Distribution> {
    return w % 2 == 0 ? make_exponential(1.0) : make_lognormal(1.0, 2.0);
  };
  const auto make_policy = [&](std::size_t task) -> std::unique_ptr<Policy> {
    switch (task) {
      case 0:
        return std::make_unique<SqdPolicy>(n, 1);
      case 1:
        return std::make_unique<SqdPolicy>(n, 2);
      case 2:
        return std::make_unique<SqdPolicy>(n, 3);
      default:
        return std::make_unique<JsqPolicy>();
    }
  };

  const auto cells = ctx.map<double>(
      workload_names.size() * kPolicies, [&](std::size_t i) {
        const std::size_t w = i / kPolicies;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per workload row: policy columns share random streams
        // (common random numbers), isolating the policy effect.
        cfg.seed = rlb::engine::cell_seed(seed, w);
        cfg.replicas = ctx.replicas();
        const auto arrivals = make_arrivals(w);
        const auto service = make_service(w);
        const auto policy = make_policy(i % kPolicies);
        return simulate_cluster(cfg, *policy, *arrivals, *service,
                                ctx.budget())
            .mean_sojourn;
      });

  ScenarioOutput out;
  out.preamble =
      "Dispatch policies for N = " + std::to_string(n) +
      " servers at utilization " + rlb::util::fmt(rho, 2) +
      "\nWorkloads: request sizes exponential / lognormal(cv=2) (heavy "
      "tail-ish),\narrivals Poisson / bursty hyperexponential(scv=4).";
  auto& table = out.add_table(
      "main", {"workload", "random", "sq(2)", "sq(3)", "jsq",
               "polls/req jsq", "polls/req sq(2)"});
  for (std::size_t w = 0; w < workload_names.size(); ++w) {
    std::vector<std::string> row{workload_names[w]};
    for (std::size_t t = 0; t < kPolicies; ++t)
      row.push_back(rlb::util::fmt(cells[w * kPolicies + t], 3));
    row.push_back(std::to_string(n));
    row.push_back("2");
    table.add_row(std::move(row));
  }
  out.postamble = "Reading: sq(2) gets most of JSQ's delay win at 1/" +
                  std::to_string(n / 2) +
                  " of the feedback cost,\nand the advantage persists for "
                  "bursty arrivals and heavy-tailed service.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "datacenter_dispatch",
    "Dispatch-policy shootout (random/SQ(2)/SQ(3)/JSQ) across Poisson and "
    "bursty, exp and lognormal workloads",
    {{"n", "number of servers", "12"},
     {"rho", "utilization", "0.85"},
     {"jobs", "simulated jobs per cell", "500000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "97531"}},
    run}};

}  // namespace
