// Scenario: choosing a dispatch policy for a small service tier.
//
// A team runs N = 12 application servers behind one dispatcher. Polling
// every server on every request (JSQ) is operationally expensive; random
// routing is free but slow. This example quantifies the middle ground —
// the paper's SQ(d) — under realistic (bursty, non-exponential) workloads,
// and shows that d = 2 captures most of JSQ's benefit.
#include <iostream>
#include <memory>

#include "sim/cluster_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 12));
  const double rho = cli.get_double("rho", 0.85);
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 500'000));
  cli.finish();

  using namespace rlb::sim;

  std::cout << "Dispatch policies for N = " << n
            << " servers at utilization " << rho << "\n"
            << "Workloads: request sizes exponential / lognormal(cv=2) "
               "(heavy tail-ish),\narrivals Poisson / bursty "
               "hyperexponential(scv=4).\n\n";

  struct Workload {
    std::string name;
    std::unique_ptr<Distribution> arrivals;
    std::unique_ptr<Distribution> service;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"poisson/exp", make_exponential(rho * n),
                       make_exponential(1.0)});
  workloads.push_back({"poisson/lognormal", make_exponential(rho * n),
                       make_lognormal(1.0, 2.0)});
  workloads.push_back({"bursty/exp",
                       make_hyperexp_fitted(1.0 / (rho * n), 4.0),
                       make_exponential(1.0)});
  workloads.push_back({"bursty/lognormal",
                       make_hyperexp_fitted(1.0 / (rho * n), 4.0),
                       make_lognormal(1.0, 2.0)});

  rlb::util::Table table({"workload", "random", "sq(2)", "sq(3)", "jsq",
                          "polls/req jsq", "polls/req sq(2)"});
  for (const auto& w : workloads) {
    ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 97531;

    std::vector<std::string> row{w.name};
    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(std::make_unique<SqdPolicy>(n, 1));
    policies.push_back(std::make_unique<SqdPolicy>(n, 2));
    policies.push_back(std::make_unique<SqdPolicy>(n, 3));
    policies.push_back(std::make_unique<JsqPolicy>());
    for (auto& policy : policies) {
      const auto r = simulate_cluster(cfg, *policy, *w.arrivals, *w.service);
      row.push_back(rlb::util::fmt(r.mean_sojourn, 3));
    }
    row.push_back(std::to_string(n));
    row.push_back("2");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nReading: sq(2) gets most of JSQ's delay win at 1/" << n / 2
            << " of the feedback cost,\nand the advantage persists for "
               "bursty arrivals and heavy-tailed service.\n";
  return 0;
}
