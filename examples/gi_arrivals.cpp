// Scenario: non-Poisson traffic and Theorem 2.
//
// Production arrival streams are rarely Poisson. Theorem 2 extends the
// improved lower bound's geometric tail to any renewal arrival process via
// sigma, the root of x = sum_k x^k beta_k = LST(mu(1-x)). This example
// computes sigma for several traffic shapes at equal utilization, shows the
// resulting tail-decay rates sigma^N, and confirms the burstiness ordering
// with the event-driven simulator.
#include <cmath>
#include <iostream>
#include <memory>

#include "sim/cluster_sim.h"
#include "sqd/interarrival.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 4));
  const double rho = cli.get_double("rho", 0.85);
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 400'000));
  cli.finish();

  using namespace rlb::sqd;

  std::cout << "Theorem 2: tail decay sigma for renewal arrivals at "
               "utilization rho = "
            << rho << ", N = " << n << "\n\n";

  struct Shape {
    std::string name;
    std::unique_ptr<Interarrival> dist;
    std::unique_ptr<rlb::sim::Distribution> sampler;  // cluster-level stream
  };
  const double cluster_mean_ia = 1.0 / (rho * n);
  const double p1 = 0.5 * (1.0 + std::sqrt(3.0 / 5.0));  // scv = 4 fit
  std::vector<Shape> shapes;
  shapes.push_back({"deterministic (cv=0)",
                    std::make_unique<DeterministicInterarrival>(1.0 / rho),
                    rlb::sim::make_deterministic(cluster_mean_ia)});
  shapes.push_back({"erlang-4 (cv=0.5)",
                    std::make_unique<ErlangInterarrival>(4, 4.0 * rho),
                    rlb::sim::make_erlang(4, 4.0 / cluster_mean_ia)});
  shapes.push_back({"poisson (cv=1)",
                    std::make_unique<ExponentialInterarrival>(rho),
                    rlb::sim::make_exponential(1.0 / cluster_mean_ia)});
  shapes.push_back(
      {"hyperexp (scv=4)",
       std::make_unique<HyperExpInterarrival>(p1, 2.0 * p1 * rho,
                                              2.0 * (1.0 - p1) * rho),
       rlb::sim::make_hyperexp_fitted(cluster_mean_ia, 4.0)});

  rlb::util::Table table({"arrivals", "sigma", "tail ratio sigma^N",
                          "sim mean delay (SQ(2))"});
  for (auto& s : shapes) {
    const double sigma = solve_sigma(*s.dist, 1.0).sigma;

    rlb::sim::ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 24680;
    rlb::sim::SqdPolicy policy(n, 2);
    const auto svc = rlb::sim::make_exponential(1.0);
    const auto r = rlb::sim::simulate_cluster(cfg, policy, *s.sampler, *svc);

    table.add_row({s.name, rlb::util::fmt(sigma, 5),
                   rlb::util::fmt(std::pow(sigma, n), 6),
                   rlb::util::fmt(r.mean_sojourn, 4)});
  }
  table.print(std::cout);
  std::cout << "\nReading: smoother-than-Poisson traffic (cv < 1) has "
               "sigma < rho — queues drain\ngeometrically faster — while "
               "bursty traffic (scv > 1) has sigma > rho. The DES\ndelays "
               "order the same way, as Theorem 2 predicts.\n";
  return 0;
}
