// Scenario "gi_arrivals" — non-Poisson traffic and Theorem 2.
//
// Production arrival streams are rarely Poisson. Theorem 2 extends the
// improved lower bound's geometric tail to any renewal arrival process via
// sigma, the root of x = sum_k x^k beta_k = LST(mu(1-x)). This example
// computes sigma for several traffic shapes at equal utilization, shows
// the resulting tail-decay rates sigma^N, and confirms the burstiness
// ordering with the event-driven simulator. Each traffic shape is one
// sweep cell.
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "sqd/interarrival.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using namespace rlb::sqd;

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 4));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 24680));

  const double cluster_mean_ia = 1.0 / (rho * n);
  const double p1 = 0.5 * (1.0 + std::sqrt(3.0 / 5.0));  // scv = 4 fit

  const std::vector<std::string> names{
      "deterministic (cv=0)", "erlang-4 (cv=0.5)", "poisson (cv=1)",
      "hyperexp (scv=4)"};
  const auto make_interarrival =
      [&](std::size_t i) -> std::unique_ptr<Interarrival> {
    switch (i) {
      case 0:
        return std::make_unique<DeterministicInterarrival>(1.0 / rho);
      case 1:
        return std::make_unique<ErlangInterarrival>(4, 4.0 * rho);
      case 2:
        return std::make_unique<ExponentialInterarrival>(rho);
      default:
        return std::make_unique<HyperExpInterarrival>(
            p1, 2.0 * p1 * rho, 2.0 * (1.0 - p1) * rho);
    }
  };
  const auto make_sampler =
      [&](std::size_t i) -> std::unique_ptr<rlb::sim::Distribution> {
    switch (i) {
      case 0:
        return rlb::sim::make_deterministic(cluster_mean_ia);
      case 1:
        return rlb::sim::make_erlang(4, 4.0 / cluster_mean_ia);
      case 2:
        return rlb::sim::make_exponential(1.0 / cluster_mean_ia);
      default:
        return rlb::sim::make_hyperexp_fitted(cluster_mean_ia, 4.0);
    }
  };

  struct CellResult {
    double sigma = 0.0;
    double sim_delay = 0.0;
  };
  const auto cells = ctx.map<CellResult>(
      names.size(), [&](std::size_t i) {
        CellResult cell;
        cell.sigma = solve_sigma(*make_interarrival(i), 1.0).sigma;

        rlb::sim::ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One shared seed: the traffic shapes are compared under common
        // random numbers (as the original example's fixed seed did).
        cfg.seed = rlb::engine::cell_seed(seed, 0);
        cfg.replicas = ctx.replicas();
        rlb::sim::SqdPolicy policy(n, 2);
        const auto sampler = make_sampler(i);
        const auto svc = rlb::sim::make_exponential(1.0);
        cell.sim_delay = rlb::sim::simulate_cluster(cfg, policy, *sampler,
                                                    *svc, ctx.budget())
                             .mean_sojourn;
        return cell;
      });

  ScenarioOutput out;
  out.preamble =
      "Theorem 2: tail decay sigma for renewal arrivals at utilization rho "
      "= " +
      rlb::util::fmt(rho, 2) + ", N = " + std::to_string(n);
  auto& table = out.add_table(
      "main", {"arrivals", "sigma", "tail ratio sigma^N",
               "sim mean delay (SQ(2))"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], rlb::util::fmt(cells[i].sigma, 5),
                   rlb::util::fmt(std::pow(cells[i].sigma, n), 6),
                   rlb::util::fmt(cells[i].sim_delay, 4)});
  }
  out.postamble =
      "Reading: smoother-than-Poisson traffic (cv < 1) has sigma < rho — "
      "queues drain\ngeometrically faster — while bursty traffic (scv > 1) "
      "has sigma > rho. The DES\ndelays order the same way, as Theorem 2 "
      "predicts.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "gi_arrivals",
    "Theorem 2 in practice: tail-decay sigma across traffic shapes, "
    "cross-checked with the DES",
    {{"n", "number of servers", "4"},
     {"rho", "utilization", "0.85"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "24680"}},
    run}};

}  // namespace
