// Scenario "quickstart" — compute finite-regime delay bounds for an SQ(d)
// cluster and compare them with simulation and the classical asymptotic
// formula:
//
//   rlb_run --scenario=quickstart --n=6 --d=2 --rho=0.9 --T=3
#include <cstdint>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "qbd/solver.h"
#include "sim/fast_sqd.h"
#include "sqd/asymptotic.h"
#include "sqd/bound_solver.h"
#include "sqd/waiting_distribution.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;
using rlb::sqd::BoundKind;
using rlb::sqd::BoundModel;
using rlb::sqd::Params;

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 6));
  const int d = static_cast<int>(ctx.cli().get_int("d", 2));
  const double rho = ctx.cli().get_double("rho", 0.9);
  const int t = static_cast<int>(ctx.cli().get_int("T", 3));
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 1'000'000));
  const auto seed = static_cast<std::uint64_t>(ctx.cli().get_int("seed", 1));
  const Params p{n, d, rho, 1.0};
  p.validate();

  // 1. Improved lower bound (Theorem 3): cheap and remarkably tight.
  const auto lower =
      rlb::sqd::solve_lower_improved(BoundModel(p, t, BoundKind::Lower));

  // 2. Upper bound (Theorem 1): may be unstable for small T at high rho.
  std::string upper = "unstable (increase T)";
  try {
    upper = rlb::util::fmt(
        rlb::sqd::solve_bound(BoundModel(p, t, BoundKind::Upper)).mean_delay,
        4);
  } catch (const rlb::qbd::UnstableError&) {
  }

  // 3. Simulation of the real system, sharded across --replicas chains.
  rlb::sim::FastSqdConfig cfg;
  cfg.params = p;
  cfg.jobs = jobs;
  cfg.warmup = jobs / 10;
  cfg.seed = rlb::engine::cell_seed(seed, 0);
  cfg.replicas = ctx.replicas();
  const auto sim = rlb::sim::simulate_sqd_fast(cfg, ctx.budget());

  // 4. The N -> infinity approximation (Eq. 16).
  const double asym = rlb::sqd::asymptotic_delay(rho, d);

  ScenarioOutput out;
  out.preamble = "SQ(" + std::to_string(d) + ") with N = " +
                 std::to_string(n) + " servers at utilization " +
                 rlb::util::fmt(rho, 2) + " (threshold T = " +
                 std::to_string(t) + ")";
  auto& table = out.add_table("main", {"quantity", "mean delay"});
  table.add_row({"lower bound (Thm 3)", rlb::util::fmt(lower.mean_delay, 4)});
  table.add_row({"simulation (" + std::to_string(jobs) + " jobs)",
                 rlb::util::fmt(sim.mean_delay, 4) + " +/- " +
                     rlb::util::fmt(sim.ci95_delay, 4)});
  table.add_row({"upper bound (Thm 1)", upper});
  table.add_row({"asymptotic (Eq. 16)", rlb::util::fmt(asym, 4)});

  // Waiting-time percentiles from the analytic profile (Erlang mixture
  // over the lower model's stationary law).
  const rlb::sqd::WaitingProfile profile(BoundModel(p, t, BoundKind::Lower));
  out.postamble =
      "waiting-time profile (analytic): P(W>0) = " +
      rlb::util::fmt(profile.ccdf(0.0), 3) +
      ", p50 = " + rlb::util::fmt(profile.quantile(0.5), 3) +
      ", p95 = " + rlb::util::fmt(profile.quantile(0.95), 3) +
      ", p99 = " + rlb::util::fmt(profile.quantile(0.99), 3) +
      "\nblock size C(N+T-1,T) = " + std::to_string(lower.block_size) +
      ", boundary states = " + std::to_string(lower.boundary_size) +
      ", P(boundary) = " + rlb::util::fmt(lower.prob_boundary, 4) +
      "\nThe asymptotic value underestimates the finite-N system by " +
      rlb::util::fmt(100.0 * (sim.mean_delay - asym) / sim.mean_delay, 1) +
      "% here.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "quickstart",
    "Finite-regime SQ(d) delay bounds vs simulation vs the asymptotic "
    "formula for one configuration",
    {{"n", "number of servers", "6"},
     {"d", "polled servers per arrival", "2"},
     {"rho", "utilization", "0.9"},
     {"T", "bound model threshold", "3"},
     {"jobs", "simulated jobs", "1000000"},
     {"seed", "base RNG seed", "1"}},
    run}};

}  // namespace
