// Scenario: mixed-generation server fleet.
//
// Real clusters are rarely homogeneous — half the machines are last year's
// hardware. The paper's model (and most SQ(d) theory) assumes identical
// servers; this example quantifies what queue-length-based SQ(d) loses on a
// skewed fleet of equal TOTAL capacity, and how much of it a
// workload-aware policy (least-work-left, which sees speeds through
// remaining work) recovers. Heterogeneous SQ(d) is the related-work
// setting of Mukhopadhyay et al. and Izagirre & Makowski.
#include <iostream>
#include <memory>

#include "sim/cluster_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const rlb::util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 8));
  const double rho = cli.get_double("rho", 0.85);
  const std::uint64_t jobs =
      static_cast<std::uint64_t>(cli.get_int("jobs", 400'000));
  cli.finish();

  using namespace rlb::sim;

  std::cout << "Mixed fleet, N = " << n << " servers, total capacity " << n
            << ", utilization " << rho
            << "\nSkew: half the fleet fast, half slow; total capacity held "
               "constant.\n\n";

  rlb::util::Table table({"skew (fast:slow)", "random", "sq(2)", "jsq",
                          "least-work", "sq(2) p99"});
  for (double fast : {1.0, 1.25, 1.5, 1.75}) {
    const double slow = 2.0 - fast;
    ClusterConfig cfg;
    cfg.servers = n;
    cfg.jobs = jobs;
    cfg.warmup = jobs / 10;
    cfg.seed = 86420;
    cfg.server_speeds.assign(n, 1.0);
    for (int s = 0; s < n / 2; ++s) {
      cfg.server_speeds[s] = fast;
      cfg.server_speeds[n / 2 + s] = slow;
    }
    const auto arr = make_exponential(rho * n);
    const auto svc = make_exponential(1.0);

    std::vector<std::string> row{rlb::util::fmt(fast, 2) + ":" +
                                 rlb::util::fmt(slow, 2)};
    SqdPolicy random_policy(n, 1), sq2(n, 2);
    JsqPolicy jsq;
    LeastWorkLeftPolicy lwl;
    double sq2_p99 = 0.0;
    for (Policy* policy :
         std::vector<Policy*>{&random_policy, &sq2, &jsq, &lwl}) {
      const auto r = simulate_cluster(cfg, *policy, *arr, *svc);
      row.push_back(rlb::util::fmt(r.mean_sojourn, 3));
      if (policy == &sq2) sq2_p99 = r.p99_sojourn;
    }
    row.push_back(rlb::util::fmt(sq2_p99, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nReading: queue-length signals degrade as speeds diverge — "
               "a short queue on a\nslow machine is a trap. Workload-aware "
               "least-work-left degrades far less. For\nmildly skewed fleets "
               "sq(2) remains a good cost/performance compromise.\n";
  return 0;
}
