// Scenario "heterogeneous_fleet" — mixed-generation server fleet.
//
// Real clusters are rarely homogeneous — half the machines are last year's
// hardware. The paper's model (and most SQ(d) theory) assumes identical
// servers; this example quantifies what queue-length-based SQ(d) loses on
// a skewed fleet of equal TOTAL capacity, and how much of it a
// workload-aware policy (least-work-left, which sees speeds through
// remaining work) recovers. Heterogeneous SQ(d) is the related-work
// setting of Mukhopadhyay et al. and Izagirre & Makowski. Each
// (skew, policy) simulation is one sweep cell.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "sim/cluster_sim.h"
#include "util/table.h"

namespace {

using rlb::engine::ScenarioContext;
using rlb::engine::ScenarioOutput;

constexpr std::size_t kPolicies = 4;  // random, sq(2), jsq, least-work

ScenarioOutput run(ScenarioContext& ctx) {
  const int n = static_cast<int>(ctx.cli().get_int("n", 8));
  const double rho = ctx.cli().get_double("rho", 0.85);
  const auto jobs =
      static_cast<std::uint64_t>(ctx.cli().get_int("jobs", 400'000));
  const auto seed =
      static_cast<std::uint64_t>(ctx.cli().get_int("seed", 86420));

  using namespace rlb::sim;
  const std::vector<double> skews{1.0, 1.25, 1.5, 1.75};
  const auto make_policy = [&](std::size_t task) -> std::unique_ptr<Policy> {
    switch (task) {
      case 0:
        return std::make_unique<SqdPolicy>(n, 1);
      case 1:
        return std::make_unique<SqdPolicy>(n, 2);
      case 2:
        return std::make_unique<JsqPolicy>();
      default:
        return std::make_unique<LeastWorkLeftPolicy>();
    }
  };

  struct CellResult {
    double mean = 0.0;
    double p99 = 0.0;
  };
  const auto cells = ctx.map<CellResult>(
      skews.size() * kPolicies, [&](std::size_t i) {
        const double fast = skews[i / kPolicies];
        const double slow = 2.0 - fast;
        ClusterConfig cfg;
        cfg.servers = n;
        cfg.jobs = jobs;
        cfg.warmup = jobs / 10;
        // One seed per skew row: policy columns share random streams
        // (common random numbers), isolating the policy effect.
        cfg.seed = rlb::engine::cell_seed(seed, i / kPolicies);
        cfg.server_speeds.assign(n, 1.0);
        for (int s = 0; s < n / 2; ++s) {
          cfg.server_speeds[s] = fast;
          cfg.server_speeds[n / 2 + s] = slow;
        }
        cfg.replicas = ctx.replicas();
        const auto arr = make_exponential(rho * n);
        const auto svc = make_exponential(1.0);
        const auto policy = make_policy(i % kPolicies);
        const auto r =
            simulate_cluster(cfg, *policy, *arr, *svc, ctx.budget());
        return CellResult{r.mean_sojourn, r.p99_sojourn};
      });

  ScenarioOutput out;
  out.preamble =
      "Mixed fleet, N = " + std::to_string(n) + " servers, total capacity " +
      std::to_string(n) + ", utilization " + rlb::util::fmt(rho, 2) +
      "\nSkew: half the fleet fast, half slow; total capacity held "
      "constant.";
  auto& table = out.add_table(
      "main", {"skew (fast:slow)", "random", "sq(2)", "jsq", "least-work",
               "sq(2) p99"});
  for (std::size_t si = 0; si < skews.size(); ++si) {
    const double fast = skews[si];
    std::vector<std::string> row{rlb::util::fmt(fast, 2) + ":" +
                                 rlb::util::fmt(2.0 - fast, 2)};
    for (std::size_t t = 0; t < kPolicies; ++t)
      row.push_back(rlb::util::fmt(cells[si * kPolicies + t].mean, 3));
    row.push_back(rlb::util::fmt(cells[si * kPolicies + 1].p99, 2));
    table.add_row(std::move(row));
  }
  out.postamble =
      "Reading: queue-length signals degrade as speeds diverge — a short "
      "queue on a\nslow machine is a trap. Workload-aware least-work-left "
      "degrades far less. For\nmildly skewed fleets sq(2) remains a good "
      "cost/performance compromise.";
  return out;
}

const rlb::engine::ScenarioRegistrar reg{{
    "heterogeneous_fleet",
    "Mixed-speed fleet at equal total capacity: what SQ(d)'s queue-length "
    "signal loses and least-work recovers",
    {{"n", "number of servers", "8"},
     {"rho", "utilization", "0.85"},
     {"jobs", "simulated jobs per cell", "400000"},
     {"seed", "base RNG seed; per-cell seeds are derived from it", "86420"}},
    run}};

}  // namespace
